"""Graceful degradation of the optional numba tier.

The compiled tier must be a pure opportunity — never a requirement and
never a surprise.  These tests fake every way the tier can be missing
(numba absent, numba importing but broken, JIT disabled via
``NUMBA_DISABLE_JIT``) and pin the fallback behavior: ``"auto"``
silently resolves to the vector tier, the only observable change is
the capability flag, and **no warnings** are emitted.  Explicitly
requesting an unavailable tier, by contrast, fails loudly with a
:class:`~repro.exceptions.KernelError` — silently substituting a
different tier for a named one would break provenance.
"""

import sys
import types
import warnings

import numpy as np
import pytest

import repro
from repro.api.records import RunRecord, capture_environment
from repro.core.base import BaseSparsifierConfig
from repro.exceptions import KernelError
from repro.kernels import (
    KERNEL_CAPABILITY_FLAGS,
    KERNELS_ENV_VAR,
    NumbaKernels,
    available_kernel_sets,
    check_kernels,
    get_kernels,
    kernel_capabilities,
    list_kernel_sets,
    resolve_kernels,
)
from repro.kernels import numba_kernels as nk


@pytest.fixture(autouse=True)
def _reset_numba_probe(monkeypatch):
    """Each test manipulates the probe; restore the real state after."""
    saved_jitted = dict(nk._JITTED)
    monkeypatch.setattr(nk, "_PROBED", False)
    monkeypatch.setattr(nk, "_NUMBA", None)
    monkeypatch.delenv("NUMBA_DISABLE_JIT", raising=False)
    monkeypatch.delenv(KERNELS_ENV_VAR, raising=False)
    yield
    nk._JITTED.clear()
    nk._JITTED.update(saved_jitted)


def _fake_numba_absent(monkeypatch):
    """Probe already ran and found nothing."""
    monkeypatch.setattr(nk, "_PROBED", True)
    monkeypatch.setattr(nk, "_NUMBA", None)


class TestRegistry:
    def test_registered_names(self):
        assert list_kernel_sets() == ("numba", "python", "vector")

    def test_python_and_vector_always_available(self):
        assert {"python", "vector"} <= set(available_kernel_sets())

    def test_capability_flags_shape(self):
        for name, caps in kernel_capabilities().items():
            assert tuple(sorted(caps)) == tuple(
                sorted(KERNEL_CAPABILITY_FLAGS)
            ), name
            assert all(isinstance(v, bool) for v in caps.values())

    def test_unknown_tier_raises_with_choices(self):
        with pytest.raises(KernelError, match="python"):
            check_kernels("fortran")
        with pytest.raises(KernelError):
            get_kernels("fortran")

    def test_kernel_error_is_value_error(self):
        # Like a bad backend=, a bad kernels= is a ValueError.
        with pytest.raises(ValueError):
            check_kernels("fortran")


class TestNumbaAbsent:
    def test_auto_falls_back_to_vector(self, monkeypatch):
        _fake_numba_absent(monkeypatch)
        assert not NumbaKernels.is_available()
        assert resolve_kernels() == "vector"
        assert resolve_kernels("auto") == "vector"
        assert "numba" not in available_kernel_sets()

    def test_fallback_emits_no_warnings(self, monkeypatch, small_grid):
        _fake_numba_absent(monkeypatch)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = repro.sparsify(
                small_grid, method="proposed", edge_fraction=0.1, seed=0
            )
        record = RunRecord.from_result(result, "proposed")
        assert record.environment["kernels"] == "vector"

    def test_only_capability_flag_changes(self, monkeypatch):
        _fake_numba_absent(monkeypatch)
        caps = kernel_capabilities()["numba"]
        assert caps == {"available": False, "compiled_kernels": True}

    def test_explicit_numba_raises_kernel_error(self, monkeypatch):
        _fake_numba_absent(monkeypatch)
        with pytest.raises(KernelError, match="not available"):
            check_kernels("numba")
        config = BaseSparsifierConfig(kernels="numba")
        with pytest.raises(KernelError):
            config.validate()

    def test_sparsify_with_explicit_numba_raises(
        self, monkeypatch, small_grid
    ):
        _fake_numba_absent(monkeypatch)
        with pytest.raises(KernelError):
            repro.sparsify(
                small_grid, method="proposed", edge_fraction=0.1,
                kernels="numba",
            )


class TestNumbaImportBroken:
    def test_import_error_probes_unavailable(self, monkeypatch):
        # A module that imports but cannot compile (no njit attribute):
        # the probe's warm-compilation step fails and reports absent.
        monkeypatch.setitem(
            sys.modules, "numba", types.ModuleType("numba")
        )
        assert not NumbaKernels.is_available()
        assert resolve_kernels() == "vector"

    def test_probe_failure_is_silent(self, monkeypatch):
        monkeypatch.setitem(
            sys.modules, "numba", types.ModuleType("numba")
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not NumbaKernels.is_available()

    def test_probe_runs_once(self, monkeypatch):
        calls = []
        broken = types.ModuleType("numba")

        class _CountingDict(dict):
            def __missing__(self, key):
                raise KeyError(key)

        monkeypatch.setitem(sys.modules, "numba", broken)
        assert not NumbaKernels.is_available()
        # Second call must not re-import: swap in a working fake and
        # confirm the cached verdict stands.
        working = types.ModuleType("numba")
        working.njit = lambda **kw: (lambda fn: calls.append(fn) or fn)
        monkeypatch.setitem(sys.modules, "numba", working)
        assert not NumbaKernels.is_available()
        assert calls == []


class TestJitDisabled:
    def test_disable_jit_makes_tier_unavailable(self, monkeypatch):
        monkeypatch.setenv("NUMBA_DISABLE_JIT", "1")
        assert not NumbaKernels.is_available()
        assert resolve_kernels() == "vector"

    def test_disable_jit_zero_or_empty_means_enabled(self, monkeypatch):
        for value in ("", "0"):
            monkeypatch.setenv("NUMBA_DISABLE_JIT", value)
            assert not nk._jit_disabled()


class TestEnvOverride:
    def test_env_var_steers_auto(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "python")
        assert resolve_kernels() == "python"
        assert resolve_kernels("auto") == "python"
        assert get_kernels().name == "python"

    def test_explicit_name_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "python")
        assert resolve_kernels("vector") == "vector"

    def test_invalid_env_value_raises_loudly(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV_VAR, "fortran")
        with pytest.raises(KernelError, match="fortran"):
            resolve_kernels()

    def test_env_override_flows_into_record(self, monkeypatch, small_grid):
        monkeypatch.setenv(KERNELS_ENV_VAR, "python")
        result = repro.sparsify(
            small_grid, method="grass", edge_fraction=0.1, seed=0
        )
        record = RunRecord.from_result(result, "grass")
        assert record.environment["kernels"] == "python"


class TestEnvironmentCapture:
    def test_resolved_tier_and_capabilities_recorded(self):
        environment = capture_environment(kernels="vector")
        assert environment["kernels"] == "vector"
        assert environment["kernel_capabilities"] == {
            "available": True, "compiled_kernels": False,
        }

    def test_auto_is_recorded_resolved(self, monkeypatch):
        _fake_numba_absent(monkeypatch)
        environment = capture_environment(kernels="auto")
        assert environment["kernels"] == "vector"

    def test_no_kernels_key_without_request(self):
        assert "kernels" not in capture_environment()

    def test_config_validates_kernels_field(self):
        config = BaseSparsifierConfig(kernels="vector")
        config.validate()
        assert config.resolve_kernels().name == "vector"
        bad = BaseSparsifierConfig(kernels="fortran")
        with pytest.raises(KernelError):
            bad.validate()

    def test_numba_tier_coercions_accept_int32_inputs(self):
        # The adapter layer must coerce scipy's int32 CSR indices; the
        # interpreted bodies see only contiguous int64/float64 arrays.
        starts = np.asarray([0, 3], dtype=np.int32)
        lengths = np.asarray([2, 1], dtype=np.int32)
        got = nk._concat_ranges_py(
            np.ascontiguousarray(starts, dtype=np.int64),
            np.ascontiguousarray(lengths, dtype=np.int64),
        )
        assert got.tolist() == [0, 1, 3]
        assert got.dtype == np.int64
