"""Differential kernel parity: every tier is bit-identical.

The kernel layer's whole contract is that the tier is an execution
detail — so these tests are differential: the pure-Python reference
tier is the oracle and every other tier must match it **bitwise** (no
tolerance; the design pins even the floating-point reductions, see
:mod:`repro.kernels.base`).  Hypothesis drives the adversarial inputs:
empty and singleton balls, zero-length ranges, disconnected graphs,
duplicate edge ids with both orientations, empty column selections.

The numba tier's loop bodies are exercised here even where numba is
absent, by running them interpreted (they are plain functions until
the probe compiles them); a numba-present environment additionally
runs the compiled versions through the registry.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.api.records import RunRecord
from repro.core._kernels import (
    ball_pair_edge_sum as legacy_ball_pair_edge_sum,
    ball_pair_edge_sum_flat as legacy_ball_pair_edge_sum_flat,
    concat_ranges as legacy_concat_ranges,
)
from repro.kernels import (
    NumbaKernels,
    PythonKernels,
    VectorKernels,
    available_kernel_sets,
    get_kernels,
)
from repro.kernels import numba_kernels as nk
from repro.kernels.base import KernelSet


class InterpretedNumbaBodies(KernelSet):
    """The numba tier's loop bodies run interpreted (no compilation).

    Gives the numba code paths differential coverage on machines
    without numba; where numba is installed the registry's compiled
    tier is tested on top of this.
    """

    name = "numba-interpreted"
    description = "numba loop bodies, uncompiled (test-only)"

    def concat_ranges(self, starts, lengths):
        return nk._concat_ranges_py(
            np.ascontiguousarray(starts, dtype=np.int64),
            np.ascontiguousarray(lengths, dtype=np.int64),
        )

    def select_ball_pair_edges(self, sources, nbrs, eids, in_q_stamp, clock):
        return nk._select_py(
            np.ascontiguousarray(sources, dtype=np.int64),
            np.ascontiguousarray(nbrs, dtype=np.int64),
            np.ascontiguousarray(eids, dtype=np.int64),
            in_q_stamp, np.int64(clock),
        )

    def expand_frontier(self, indptr, neighbors, frontier, stamp, clock):
        return nk._expand_py(
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(neighbors, dtype=np.int64),
            np.ascontiguousarray(frontier, dtype=np.int64),
            stamp, np.int64(clock),
        )

    def gather_csc_columns(self, indptr, indices, data, cols):
        return nk._gather_py(
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(indices, dtype=np.int64),
            np.ascontiguousarray(data, dtype=np.float64),
            np.ascontiguousarray(cols, dtype=np.int64),
        )

    def probe_rhs(self, incidence, q):
        import scipy.sparse as sp

        csr = sp.csr_matrix(incidence)
        return nk._probe_rhs_py(
            np.ascontiguousarray(csr.indptr, dtype=np.int64),
            np.ascontiguousarray(csr.indices, dtype=np.int64),
            np.ascontiguousarray(csr.data, dtype=np.float64),
            csr.shape[0], csr.shape[1],
            np.ascontiguousarray(q, dtype=np.float64),
        )


ORACLE = PythonKernels()


def _challengers():
    sets = [VectorKernels(), InterpretedNumbaBodies()]
    if NumbaKernels.is_available():
        sets.append(NumbaKernels())
    return sets


CHALLENGERS = _challengers()
CHALLENGER_IDS = [k.name for k in CHALLENGERS]


def _random_graph(seed: int, n: int, extra_edges: int):
    """Adversarial weighted graph: may be disconnected, n >= 2."""
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, size=extra_edges)
    v = rng.integers(0, n, size=extra_edges)
    keep = u != v
    # A guaranteed edge so the graph is never edgeless; dedupe the
    # canonicalized pairs (Graph rejects duplicates).
    u = np.concatenate([[0], u[keep]])
    v = np.concatenate([[1], v[keep]])
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    _, first = np.unique(lo * n + hi, return_index=True)
    u, v = lo[first], hi[first]
    w = rng.uniform(0.1, 10.0, size=len(u))
    return repro.Graph(n, u, v, w)


graph_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=2, max_value=40),      # n
    st.integers(min_value=0, max_value=120),     # extra edges
)


class TestConcatRanges:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=0, max_value=12),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_bitwise_parity(self, pairs):
        starts = np.asarray([p[0] for p in pairs], dtype=np.int64)
        lengths = np.asarray([p[1] for p in pairs], dtype=np.int64)
        expected = ORACLE.concat_ranges(starts, lengths)
        assert np.array_equal(
            legacy_concat_ranges(starts, lengths), expected
        )
        for kernels in CHALLENGERS:
            got = kernels.concat_ranges(starts, lengths)
            assert got.dtype == np.int64
            assert np.array_equal(got, expected), kernels.name

    def test_all_zero_lengths(self):
        starts = np.asarray([5, 9, 0], dtype=np.int64)
        lengths = np.zeros(3, dtype=np.int64)
        for kernels in CHALLENGERS:
            assert len(kernels.concat_ranges(starts, lengths)) == 0


class TestSelectBallPairEdges:
    @given(graph_params, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_bitwise_parity(self, params, pick_seed):
        graph = _random_graph(*params)
        indptr, nbrs, eids = graph.adjacency()
        rng = np.random.default_rng(pick_seed)
        n = graph.n
        # Adversarial ball pair: possibly empty p-ball / empty q-ball.
        p_size = int(rng.integers(0, n + 1))
        q_size = int(rng.integers(0, n + 1))
        nodes_p = np.sort(rng.choice(n, size=p_size, replace=False))
        nodes_q = rng.choice(n, size=q_size, replace=False)
        clock = 17
        stamp = np.zeros(n, dtype=np.int64)
        stamp[nodes_q] = clock
        starts = indptr[nodes_p]
        lengths = indptr[nodes_p + 1] - starts
        flat = legacy_concat_ranges(starts, lengths)
        sources = np.repeat(nodes_p, lengths)
        args = (sources, nbrs[flat], eids[flat], stamp, clock)
        expected = ORACLE.select_ball_pair_edges(*args)
        # The contract the shared reduction depends on.
        assert np.array_equal(np.sort(expected[0]), expected[0])
        assert len(np.unique(expected[0])) == len(expected[0])
        for kernels in CHALLENGERS:
            got = kernels.select_ball_pair_edges(*args)
            for got_arr, exp_arr in zip(got, expected):
                assert np.array_equal(got_arr, exp_arr), kernels.name

    @pytest.mark.parametrize("kernels", CHALLENGERS, ids=CHALLENGER_IDS)
    def test_empty_input(self, kernels):
        empty = np.empty(0, dtype=np.int64)
        stamp = np.zeros(4, dtype=np.int64)
        for arr in kernels.select_ball_pair_edges(
            empty, empty, empty, stamp, 1
        ):
            assert len(arr) == 0
            assert arr.dtype == np.int64

    @pytest.mark.parametrize("kernels", CHALLENGERS, ids=CHALLENGER_IDS)
    def test_duplicate_eids_keep_first_orientation(self, kernels):
        # Both orientations of edge 7 qualify; first occurrence wins.
        sources = np.asarray([2, 3], dtype=np.int64)
        nbrs = np.asarray([3, 2], dtype=np.int64)
        eids = np.asarray([7, 7], dtype=np.int64)
        stamp = np.zeros(5, dtype=np.int64)
        stamp[[2, 3]] = 9
        ueids, usrc, unbr = kernels.select_ball_pair_edges(
            sources, nbrs, eids, stamp, 9
        )
        assert ueids.tolist() == [7]
        assert usrc.tolist() == [2]
        assert unbr.tolist() == [3]


class TestExpandFrontier:
    @given(graph_params, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_bitwise_parity_and_stamps(self, params, pick_seed):
        graph = _random_graph(*params)
        indptr, nbrs, _ = graph.adjacency()
        rng = np.random.default_rng(pick_seed)
        n = graph.n
        frontier = rng.choice(
            n, size=int(rng.integers(0, n + 1)), replace=False
        ).astype(np.int64)
        prestamped = rng.choice(
            n, size=int(rng.integers(0, n + 1)), replace=False
        )
        clock = 5
        base = np.zeros(n, dtype=np.int64)
        base[prestamped] = clock
        base[frontier] = clock
        stamp_oracle = base.copy()
        expected = ORACLE.expand_frontier(
            indptr, nbrs, frontier, stamp_oracle, clock
        )
        for kernels in CHALLENGERS:
            stamp = base.copy()
            got = kernels.expand_frontier(indptr, nbrs, frontier, stamp, clock)
            assert np.array_equal(got, expected), kernels.name
            assert np.array_equal(stamp, stamp_oracle), kernels.name

    @pytest.mark.parametrize("kernels", CHALLENGERS, ids=CHALLENGER_IDS)
    def test_isolated_frontier_node(self, kernels):
        # Node 2 is disconnected: expanding from it yields nothing.
        graph = repro.Graph(3, [0], [1], [1.0])
        indptr, nbrs, _ = graph.adjacency()
        stamp = np.zeros(3, dtype=np.int64)
        stamp[2] = 1
        fresh = kernels.expand_frontier(
            indptr, nbrs, np.asarray([2], dtype=np.int64), stamp, 1
        )
        assert len(fresh) == 0


class TestGatherCscColumns:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=1, max_value=25),
    )
    @settings(max_examples=60, deadline=None)
    def test_bitwise_parity(self, seed, rows, columns):
        import scipy.sparse as sp

        rng = np.random.default_rng(seed)
        Z = sp.random(
            rows, columns, density=float(rng.uniform(0.0, 0.5)),
            random_state=int(seed) % (2**31), format="csc",
        )
        count = int(rng.integers(0, 2 * columns))
        cols = rng.integers(0, columns, size=count)  # duplicates allowed
        expected = ORACLE.gather_csc_columns(Z.indptr, Z.indices, Z.data, cols)
        for kernels in CHALLENGERS:
            got = kernels.gather_csc_columns(Z.indptr, Z.indices, Z.data, cols)
            for got_arr, exp_arr in zip(got, expected):
                assert np.array_equal(got_arr, exp_arr), kernels.name

    @pytest.mark.parametrize("kernels", CHALLENGERS, ids=CHALLENGER_IDS)
    def test_matches_extract_columns(self, kernels):
        import scipy.sparse as sp

        from repro.linalg.spai import extract_columns

        Z = sp.random(30, 20, density=0.3, random_state=7, format="csc")
        cols = np.asarray([0, 5, 5, 19, 3], dtype=np.int64)
        expected = extract_columns(Z, cols, kernels=VectorKernels())
        got = extract_columns(Z, cols, kernels=kernels)
        for got_arr, exp_arr in zip(got, expected):
            assert np.array_equal(got_arr, exp_arr)


class TestProbeRhs:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_bitwise_parity_with_scipy_matvec(self, seed, m, n):
        import scipy.sparse as sp

        rng = np.random.default_rng(seed)
        incidence = sp.random(
            m, n, density=float(rng.uniform(0.05, 0.6)),
            random_state=int(seed) % (2**31), format="csr",
        )
        q = rng.standard_normal(m)
        expected = incidence.T @ q  # the historical expression
        for kernels in [ORACLE] + CHALLENGERS:
            got = kernels.probe_rhs(incidence, q)
            assert np.array_equal(got, expected), kernels.name


class TestScoringCompositions:
    @given(graph_params, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_ball_pair_edge_sum_bitwise(self, params, pick_seed):
        graph = _random_graph(*params)
        indptr, nbrs, eids = graph.adjacency()
        rng = np.random.default_rng(pick_seed)
        n = graph.n
        nodes_p = np.sort(rng.choice(
            n, size=int(rng.integers(0, n + 1)), replace=False
        )).astype(np.int64)
        nodes_q = rng.choice(n, size=int(rng.integers(0, n + 1)), replace=False)
        clock = 3
        stamp = np.zeros(n, dtype=np.int64)
        stamp[nodes_q] = clock
        values = rng.standard_normal(n)
        expected = legacy_ball_pair_edge_sum(
            indptr, nbrs, eids, graph.w, nodes_p, stamp, clock, values
        )
        for kernels in [ORACLE] + CHALLENGERS:
            got = kernels.ball_pair_edge_sum(
                indptr, nbrs, eids, graph.w, nodes_p, stamp, clock, values
            )
            # Bitwise: the reduction is one shared numpy expression.
            assert got == expected, kernels.name

    def test_flat_variant_matches_legacy(self):
        graph = _random_graph(3, 25, 80)
        indptr, nbrs, eids = graph.adjacency()
        rng = np.random.default_rng(0)
        nodes_p = np.sort(rng.choice(25, size=10, replace=False))
        stamp = np.zeros(25, dtype=np.int64)
        stamp[rng.choice(25, size=12, replace=False)] = 4
        values = rng.standard_normal(25)
        starts = indptr[nodes_p]
        lengths = indptr[nodes_p + 1] - starts
        flat = legacy_concat_ranges(starts, lengths)
        args = (
            np.repeat(nodes_p, lengths), nbrs[flat], eids[flat],
            graph.w, stamp, 4, values,
        )
        expected = legacy_ball_pair_edge_sum_flat(*args)
        for kernels in [ORACLE] + CHALLENGERS:
            assert kernels.ball_pair_edge_sum_flat(*args) == expected


class TestEndToEndFingerprints:
    """Every registered method × every available tier: byte-equal records."""

    @pytest.mark.parametrize("method", repro.list_methods())
    def test_fingerprint_byte_equal_across_tiers(self, method, small_grid):
        serialized = {}
        for tier in available_kernel_sets():
            result = repro.sparsify(
                small_grid, method=method, edge_fraction=0.15, seed=1,
                kernels=tier,
            )
            record = RunRecord.from_result(result, method=method, label="g")
            assert record.environment["kernels"] == tier
            assert record.config["kernels"] == tier
            serialized[tier] = json.dumps(record.fingerprint(), sort_keys=True)
        reference = serialized["python"]
        for tier, payload in serialized.items():
            assert payload == reference, (method, tier)

    def test_fingerprint_strips_kernel_keys(self, small_grid):
        result = repro.sparsify(
            small_grid, method="proposed", edge_fraction=0.1, seed=0,
            kernels="python",
        )
        record = RunRecord.from_result(result, method="proposed", label="g")
        fingerprint = record.fingerprint()
        assert "kernels" not in fingerprint["config"]
        assert "kernels" not in fingerprint["environment"]
        assert "kernel_capabilities" not in fingerprint["environment"]
        # Stripping must not mutate the record itself.
        assert record.config["kernels"] == "python"
        assert record.environment["kernels"] == "python"

    def test_explicit_tiers_match_default_auto(self, small_grid):
        default = repro.sparsify(
            small_grid, method="proposed", edge_fraction=0.15, seed=2
        )
        explicit = repro.sparsify(
            small_grid, method="proposed", edge_fraction=0.15, seed=2,
            kernels="python",
        )
        fp_default = RunRecord.from_result(default, "proposed").fingerprint()
        fp_explicit = RunRecord.from_result(explicit, "proposed").fingerprint()
        assert json.dumps(fp_default, sort_keys=True) == json.dumps(
            fp_explicit, sort_keys=True
        )


class TestRegistryTierObjects:
    def test_instances_cached_and_hashable(self):
        assert get_kernels("vector") is get_kernels("vector")
        assert get_kernels("vector") == VectorKernels()
        assert hash(get_kernels("python")) == hash(PythonKernels())
        assert get_kernels("python") != get_kernels("vector")
