"""The ``persistent_factors`` capability, exercised end to end.

Three layers:

* the **flag** — ``supports_persistent_factors()`` feeds the
  capability table truthfully (numpy: yes; scipy: no, SuperLU handles
  do not pickle; cholmod: a runtime probe of the installed library);
* the **warm restore** — a backend whose factors persist gets its
  ``factor_g`` served from the disk cache in a fresh session: disk hit,
  nonzero ``restore_seconds``, and a fingerprint byte-identical to the
  cold run;
* the **cholmod pickling machinery** — :class:`CholmodFactor` pickles
  by delegating to the wrapped library factor and rebuilds its derived
  arrays on restore, verified here through a duck-typed stand-in so the
  wrapper logic is covered even where scikit-sparse is absent.
"""

import io
import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api.session import SparsifierSession
from repro.backends import get_backend
from repro.backends.cholmod_backend import CholmodBackend, CholmodFactor
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.scipy_backend import ScipyBackend
from repro.graph import grid2d


@pytest.fixture()
def grid():
    return grid2d(7, 7, weights="uniform", seed=5)


class TestCapabilityFlag:
    def test_numpy_persists(self):
        assert NumpyBackend.supports_persistent_factors()
        assert NumpyBackend.capabilities()["persistent_factors"] is True

    def test_scipy_does_not_persist(self):
        assert not ScipyBackend.supports_persistent_factors()
        assert ScipyBackend.capabilities()["persistent_factors"] is False

    def test_flag_matches_reality(self, grid):
        """Whatever a backend claims, a pickle round-trip agrees."""
        from repro.graph import regularization_shift, regularized_laplacian

        laplacian = regularized_laplacian(
            grid, regularization_shift(grid, 1e-6)
        )
        for name in ("numpy", "scipy"):
            backend = get_backend(name)
            factor = backend.factorize(laplacian)
            rhs = np.arange(1.0, grid.n + 1.0)
            try:
                buffer = io.BytesIO()
                pickle.dump(factor, buffer)
                buffer.seek(0)
                restored = pickle.load(buffer)
                roundtrips = bool(np.array_equal(
                    restored.solve(rhs), factor.solve(rhs)
                ))
            except Exception:
                roundtrips = False
            assert roundtrips == backend.supports_persistent_factors(), name

    def test_cholmod_unavailable_reports_false(self):
        if not CholmodBackend.is_available():
            assert not CholmodBackend.supports_persistent_factors()
            assert (
                CholmodBackend.capabilities()["persistent_factors"] is False
            )
        else:  # pragma: no cover - exercised where sksparse exists
            probed = CholmodBackend.supports_persistent_factors()
            assert isinstance(probed, bool)


class TestWarmFactorRestore:
    """factor_g persisted cold, restored warm, fingerprints identical.

    Warm runs use a *different seed*: the seed is part of the
    ``er_resistances`` key but not of ``factor_g``'s, so the sketch is
    recomputed while the factorization restores from disk — which is
    exactly the reuse ``persistent_factors`` exists for.
    """

    def test_numpy_factor_served_from_disk(self, grid, tmp_path):
        cold = SparsifierSession(grid, cache_dir=tmp_path)
        cold.run("er_sampling", edge_fraction=0.10, seed=1, backend="numpy")
        assert cold.stats()["disk"]["stores"].get("factor_g", 0) == 1

        warm_session = SparsifierSession(grid, cache_dir=tmp_path)
        warm = warm_session.run(
            "er_sampling", edge_fraction=0.10, seed=2, backend="numpy"
        )
        disk = warm_session.stats()["disk"]
        assert disk["hits"].get("factor_g", 0) == 1
        assert disk["stores"].get("factor_g", 0) == 0
        assert warm.timings.get("restore_seconds", 0.0) > 0.0

    def test_warm_fingerprint_identical_to_cold(self, grid, tmp_path):
        cold = SparsifierSession(grid, cache_dir=tmp_path).run(
            "er_sampling", edge_fraction=0.10, seed=1, backend="numpy"
        )
        warm = SparsifierSession(grid, cache_dir=tmp_path).run(
            "er_sampling", edge_fraction=0.10, seed=1, backend="numpy"
        )
        assert warm.fingerprint() == cold.fingerprint()
        assert warm.timings.get("restore_seconds", 0.0) > 0.0

    def test_scipy_factor_not_persisted_but_run_still_warm(
        self, grid, tmp_path
    ):
        """SuperLU factors skip the disk; everything else still warms."""
        cold_session = SparsifierSession(grid, cache_dir=tmp_path)
        cold = cold_session.run(
            "er_sampling", edge_fraction=0.10, seed=1, backend="scipy"
        )
        assert cold_session.stats()["disk"]["skips"].get("factor_g", 0) == 1
        warm_session = SparsifierSession(grid, cache_dir=tmp_path)
        warm = warm_session.run(
            "er_sampling", edge_fraction=0.10, seed=1, backend="scipy"
        )
        assert warm.fingerprint() == cold.fingerprint()
        assert warm_session.stats()["disk"]["hits"].get("factor_g", 0) == 0


class _FakeLibraryFactor:
    """Duck-typed stand-in for a ``sksparse.cholmod`` factor object.

    Implements the three entry points :class:`CholmodFactor` consumes —
    ``L()``, ``P()`` and ``__call__`` — over a dense lower factor, and
    pickles as plain data, exactly like sksparse factors (which
    serialize their internal CHOLMOD state).
    """

    def __init__(self, matrix: np.ndarray):
        self._dense_lower = np.linalg.cholesky(matrix)
        self._n = matrix.shape[0]

    def L(self):
        return sp.csc_matrix(self._dense_lower)

    def P(self):
        return np.arange(self._n)

    def __call__(self, b):
        y = np.linalg.solve(self._dense_lower, b)
        return np.linalg.solve(self._dense_lower.T, y)


class TestCholmodFactorPickling:
    def _factor(self) -> CholmodFactor:
        rng = np.random.default_rng(3)
        raw = rng.standard_normal((6, 6))
        spd = raw @ raw.T + 6 * np.eye(6)
        return CholmodFactor(_FakeLibraryFactor(spd))

    def test_getstate_is_minimal(self):
        factor = self._factor()
        assert set(factor.__getstate__()) == {"factor"}

    def test_roundtrip_rebuilds_derived_arrays(self):
        factor = self._factor()
        buffer = io.BytesIO()
        pickle.dump(factor, buffer)
        buffer.seek(0)
        restored = pickle.load(buffer)
        assert restored.n == factor.n
        assert restored.nnz == factor.nnz
        assert np.array_equal(restored.perm, factor.perm)
        assert np.array_equal(restored.iperm, factor.iperm)
        assert np.array_equal(
            restored.L.toarray(), factor.L.toarray()
        )

    def test_roundtrip_solves_bitwise(self):
        factor = self._factor()
        rhs = np.arange(1.0, 7.0)
        expected = factor.solve(rhs)
        restored = pickle.loads(pickle.dumps(factor))
        assert np.array_equal(restored.solve(rhs), expected)
