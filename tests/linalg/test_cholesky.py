"""Tests for the sparse Cholesky backends."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import FactorizationError
from repro.graph import laplacian, regularized_laplacian, regularization_shift
from repro.linalg import cholesky


@pytest.fixture(scope="module", params=["python", "superlu"])
def backend(request):
    return request.param


def _spd_matrix(graph, rel=1e-3):
    shift = regularization_shift(graph, rel)
    return regularized_laplacian(graph, shift)


def test_reconstruction(small_grid, backend):
    A = _spd_matrix(small_grid)
    factor = cholesky(A, backend=backend, check=True)
    reordered = A[factor.perm][:, factor.perm].toarray()
    rebuilt = (factor.L @ factor.L.T).toarray()
    np.testing.assert_allclose(rebuilt, reordered, atol=1e-8)


def test_solve_matches_dense(small_grid, backend):
    A = _spd_matrix(small_grid)
    factor = cholesky(A, backend=backend)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(small_grid.n)
    x = factor.solve(b)
    expected = np.linalg.solve(A.toarray(), b)
    np.testing.assert_allclose(x, expected, rtol=1e-6, atol=1e-9)


def test_solve_multiple_rhs(small_grid, backend):
    A = _spd_matrix(small_grid)
    factor = cholesky(A, backend=backend)
    rng = np.random.default_rng(1)
    B = rng.standard_normal((small_grid.n, 3))
    X = factor.solve(B)
    np.testing.assert_allclose(A @ X, B, atol=1e-7)


def test_factor_is_lower_triangular(small_grid, backend):
    A = _spd_matrix(small_grid)
    factor = cholesky(A, backend=backend)
    coo = factor.L.tocoo()
    assert (coo.row >= coo.col).all()
    assert (factor.L.diagonal() > 0).all()


def test_mmatrix_factor_has_nonpositive_offdiagonals(small_grid, backend):
    """Proposition 1's premise: Cholesky factor of an SDD M-matrix."""
    A = _spd_matrix(small_grid)
    factor = cholesky(A, backend=backend)
    coo = factor.L.tocoo()
    off = coo.row != coo.col
    assert (coo.data[off] <= 1e-12).all()


def test_rejects_indefinite(backend):
    A = sp.csc_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))  # eigenvalues 3, -1
    with pytest.raises(FactorizationError):
        cholesky(A, backend=backend)


def test_rejects_nonsquare():
    with pytest.raises(ValueError):
        cholesky(sp.random(3, 4, format="csc"))


def test_rejects_unknown_backend(small_grid):
    with pytest.raises(FactorizationError):
        cholesky(_spd_matrix(small_grid), backend="cuda")


def test_python_orderings_all_work(small_grid):
    A = _spd_matrix(small_grid)
    rng = np.random.default_rng(2)
    b = rng.standard_normal(small_grid.n)
    expected = np.linalg.solve(A.toarray(), b)
    for ordering in ("natural", "rcm", "mindeg"):
        factor = cholesky(A, backend="python", ordering=ordering)
        np.testing.assert_allclose(factor.solve(b), expected, rtol=1e-6, atol=1e-9)


def test_python_rejects_unknown_ordering(small_grid):
    with pytest.raises(FactorizationError):
        cholesky(_spd_matrix(small_grid), backend="python", ordering="amd2000")


def test_auto_prefers_superlu(small_grid):
    factor = cholesky(_spd_matrix(small_grid), backend="auto")
    assert factor.backend == "superlu"


def test_nnz_and_memory(small_grid, backend):
    factor = cholesky(_spd_matrix(small_grid), backend=backend)
    assert factor.nnz >= small_grid.n  # at least the diagonal
    assert factor.memory_bytes() > 0


def test_permutation_is_valid(small_grid, backend):
    factor = cholesky(_spd_matrix(small_grid), backend=backend)
    assert sorted(factor.perm.tolist()) == list(range(small_grid.n))
    np.testing.assert_array_equal(
        factor.iperm[factor.perm], np.arange(small_grid.n)
    )


def test_backends_agree(small_mesh):
    A = _spd_matrix(small_mesh)
    rng = np.random.default_rng(3)
    b = rng.standard_normal(small_mesh.n)
    x_py = cholesky(A, backend="python").solve(b)
    x_slu = cholesky(A, backend="superlu").solve(b)
    np.testing.assert_allclose(x_py, x_slu, rtol=1e-6, atol=1e-10)


def test_solve_lower_upper_consistency(small_grid, backend):
    """solve == P^T L^-T L^-1 P applied manually."""
    A = _spd_matrix(small_grid)
    factor = cholesky(A, backend=backend)
    rng = np.random.default_rng(4)
    b = rng.standard_normal(small_grid.n)
    y = factor.solve_lower(b[factor.perm])
    z = factor.solve_upper(y)
    x = np.empty_like(z)
    x[factor.perm] = z
    np.testing.assert_allclose(x, factor.solve(b), rtol=1e-8, atol=1e-10)
