"""Tests for generalized eigen-tools and the condition number."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.graph import regularization_shift, regularized_laplacian
from repro.linalg import (
    cholesky,
    generalized_lambda_max,
    power_iteration_lambda_max,
    relative_condition_number,
)
from repro.tree import mewst


@pytest.fixture(scope="module")
def pencil(small_grid):
    """(L_G, L_S, dense lambda_max) for a tree subgraph of the grid."""
    shift = regularization_shift(small_grid, 1e-5)
    L_G = regularized_laplacian(small_grid, shift)
    tree = small_grid.subgraph(mewst(small_grid))
    L_S = regularized_laplacian(tree, shift)
    eigenvalues = sla.eigh(L_G.toarray(), L_S.toarray(), eigvals_only=True)
    return L_G, L_S, float(eigenvalues.max()), float(eigenvalues.min())


def test_arpack_matches_dense(pencil):
    L_G, L_S, lam_max, _ = pencil
    factor = cholesky(L_S)
    value = generalized_lambda_max(L_G, L_S, factor.solve, tol=1e-8)
    assert value == pytest.approx(lam_max, rel=1e-4)


def test_power_iteration_matches_dense(pencil):
    L_G, L_S, lam_max, _ = pencil
    factor = cholesky(L_S)
    value = power_iteration_lambda_max(
        L_G, factor.solve, B=L_S, tol=1e-8, maxiter=5000
    )
    assert value == pytest.approx(lam_max, rel=1e-2)


def test_lambda_min_is_one(pencil):
    """Footnote 1 regularization pins the smallest eigenvalue at 1."""
    _, _, _, lam_min = pencil
    assert lam_min == pytest.approx(1.0, abs=1e-6)


def test_condition_number_equals_lambda_max(pencil):
    L_G, L_S, lam_max, _ = pencil
    factor = cholesky(L_S)
    kappa = relative_condition_number(L_G, factor, L_S, tol=1e-8)
    assert kappa == pytest.approx(lam_max, rel=1e-4)


def test_identical_graphs_kappa_one(small_grid):
    shift = regularization_shift(small_grid, 1e-5)
    L = regularized_laplacian(small_grid, shift)
    factor = cholesky(L)
    kappa = relative_condition_number(L, factor, L, tol=1e-8)
    assert kappa == pytest.approx(1.0, abs=1e-5)


def test_kappa_decreases_as_edges_added(small_grid):
    """Densifying the subgraph can only improve (reduce) kappa."""
    shift = regularization_shift(small_grid, 1e-5)
    L_G = regularized_laplacian(small_grid, shift)
    tree_ids = mewst(small_grid)
    off = np.setdiff1d(np.arange(small_grid.edge_count), tree_ids)
    kappas = []
    for extra in (0, 10, 30):
        ids = np.sort(np.concatenate([tree_ids, off[:extra]]))
        L_S = regularized_laplacian(small_grid.subgraph(ids), shift)
        factor = cholesky(L_S)
        kappas.append(relative_condition_number(L_G, factor, L_S, tol=1e-7))
    assert kappas[0] >= kappas[1] >= kappas[2]


def test_tiny_pencil_dense_path():
    import scipy.sparse as sp

    A = sp.csc_matrix(np.array([[2.0, 0.0], [0.0, 3.0]]))
    B = sp.csc_matrix(np.eye(2))
    value = generalized_lambda_max(A, B, lambda x: x)
    assert value == pytest.approx(3.0)
