"""Tests for eigensolver edge cases and fallback paths."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConvergenceError
from repro.graph import grid2d, regularization_shift, regularized_laplacian
from repro.linalg import (
    cholesky,
    generalized_lambda_max,
    power_iteration_lambda_max,
)
from repro.linalg.eigen import generalized_lambda_max as glm


def test_deterministic_across_calls(small_grid):
    """Seeded v0 makes repeated measurements bit-identical."""
    shift = regularization_shift(small_grid, 1e-5)
    L_G = regularized_laplacian(small_grid, shift)
    sub = small_grid.subgraph(np.arange(small_grid.edge_count) % 2 == 0)
    # Ensure spanning (fall back to half the edges + a path if needed).
    from repro.graph import connected_components
    count, _ = connected_components(sub)
    if count != 1:
        pytest.skip("random half-graph disconnected; covered elsewhere")
    L_S = regularized_laplacian(sub, shift)
    factor = cholesky(L_S)
    a = generalized_lambda_max(L_G, L_S, factor.solve, seed=5)
    b = generalized_lambda_max(L_G, L_S, factor.solve, seed=5)
    assert a == b


def test_refinement_never_decreases_estimate():
    """Power-step polishing is monotone: refined >= raw ARPACK value."""
    g = grid2d(9, 9, seed=3)
    shift = regularization_shift(g, 1e-5)
    L_G = regularized_laplacian(g, shift)
    from repro.tree import mewst

    L_T = regularized_laplacian(g.subgraph(mewst(g)), shift)
    factor = cholesky(L_T)
    raw = glm(L_G, L_T, factor.solve, refine_steps=0)
    refined = glm(L_G, L_T, factor.solve, refine_steps=10)
    assert refined >= raw - 1e-9


def test_power_iteration_standard_problem():
    """B = I reduces to the ordinary dominant eigenvalue."""
    A = sp.diags([1.0, 5.0, 3.0]).tocsr()
    value = power_iteration_lambda_max(
        A, lambda x: x, B=sp.eye(3, format="csr"), tol=1e-10, maxiter=2000
    )
    assert value == pytest.approx(5.0, rel=1e-3)


def test_power_iteration_without_b_matrix():
    A = sp.diags([2.0, 7.0]).tocsr()
    value = power_iteration_lambda_max(A, lambda x: x, tol=1e-10, maxiter=2000)
    assert value == pytest.approx(7.0, rel=1e-2)


def test_one_by_one_pencil():
    A = sp.csc_matrix(np.array([[4.0]]))
    B = sp.csc_matrix(np.array([[2.0]]))
    assert generalized_lambda_max(A, B, lambda x: x / 2.0) == pytest.approx(2.0)
