"""Tests for elimination tree and symbolic pattern machinery."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import laplacian
from repro.linalg import elimination_tree, postorder
from repro.linalg.etree import _upper_csc, ereach


def _dense_chol_pattern(A):
    """Reference: nonzero pattern of the dense Cholesky factor."""
    dense = A.toarray()
    L = np.linalg.cholesky(dense)
    return np.abs(L) > 1e-12


def test_etree_of_tridiagonal():
    """Tridiagonal matrix: etree is the path i -> i+1."""
    n = 6
    A = sp.diags([-1, 2.5, -1], [-1, 0, 1], shape=(n, n)).tocsc()
    parent = elimination_tree(A)
    np.testing.assert_array_equal(parent, [1, 2, 3, 4, 5, -1])


def test_etree_parent_is_greater(small_grid):
    L = laplacian(small_grid, shift=0.1)
    parent = elimination_tree(L)
    for node, par in enumerate(parent):
        assert par == -1 or par > node


def test_etree_matches_factor_pattern(small_grid):
    """parent[i] == min{k > i : L[k,i] != 0} (no exact cancellation here)."""
    L = laplacian(small_grid, shift=0.1)
    parent = elimination_tree(L)
    pattern = _dense_chol_pattern(L)
    n = small_grid.n
    for i in range(n):
        below = np.flatnonzero(pattern[i + 1 :, i])
        if len(below) == 0:
            assert parent[i] == -1
        else:
            assert parent[i] == i + 1 + below[0]


def test_ereach_matches_factor_row_pattern(small_grid):
    L = laplacian(small_grid, shift=0.1)
    parent = elimination_tree(L)
    pattern = _dense_chol_pattern(L)
    upper = _upper_csc(L)
    n = small_grid.n
    marker = np.full(n, -1, dtype=np.int64)
    for k in range(n):
        reach = set(ereach(upper, k, parent, marker, k))
        expected = set(np.flatnonzero(pattern[k, :k]).tolist())
        assert reach == expected


def test_ereach_topological_order(small_grid):
    """Descendants appear before ancestors in the returned pattern."""
    L = laplacian(small_grid, shift=0.1)
    parent = elimination_tree(L)
    upper = _upper_csc(L)
    marker = np.full(small_grid.n, -1, dtype=np.int64)
    for k in (10, 30, 63):
        reach = ereach(upper, k, parent, marker, 1000 + k)
        seen = set()
        for j in reach:
            # No previously seen node may be an ancestor of j.
            ancestor = parent[j]
            while ancestor != -1 and ancestor < k:
                assert ancestor not in seen
                ancestor = parent[ancestor]
            seen.add(j)


def test_postorder_children_before_parents():
    parent = np.array([2, 2, 4, 4, -1])
    order = postorder(parent)
    position = {int(node): k for k, node in enumerate(order)}
    for node, par in enumerate(parent):
        if par != -1:
            assert position[node] < position[int(par)]


def test_postorder_rejects_cycle():
    with pytest.raises(ValueError):
        postorder(np.array([1, 0]))
