"""Tests for fill-reducing orderings."""

import numpy as np
import pytest

from repro.graph import laplacian
from repro.linalg import (
    minimum_degree_ordering,
    natural_ordering,
    rcm_ordering,
)
from repro.linalg.cholesky import cholesky


def _is_permutation(perm, n):
    return sorted(perm.tolist()) == list(range(n))


@pytest.mark.parametrize(
    "ordering", [natural_ordering, rcm_ordering, minimum_degree_ordering]
)
def test_returns_permutation(ordering, small_grid):
    L = laplacian(small_grid, shift=0.1)
    perm = ordering(L)
    assert _is_permutation(perm, small_grid.n)


def test_natural_is_identity(small_grid):
    L = laplacian(small_grid, shift=0.1)
    np.testing.assert_array_equal(
        natural_ordering(L), np.arange(small_grid.n)
    )


def test_rcm_reduces_bandwidth(medium_grid):
    L = laplacian(medium_grid, shift=0.1).tocoo()
    perm = rcm_ordering(L)
    iperm = np.empty(len(perm), dtype=np.int64)
    iperm[perm] = np.arange(len(perm))
    natural_bw = np.abs(L.row - L.col).max()
    rcm_bw = np.abs(iperm[L.row] - iperm[L.col]).max()
    # Row-major numbering of a 20x20 grid already has bandwidth 20;
    # RCM should do at least as well.
    assert rcm_bw <= natural_bw


def test_mindeg_reduces_fill_vs_natural(small_grid):
    """Minimum degree should not produce more fill than natural order."""
    L = laplacian(small_grid, shift=0.1)
    f_nat = cholesky(L, backend="python", ordering="natural")
    f_md = cholesky(L, backend="python", ordering="mindeg")
    assert f_md.nnz <= f_nat.nnz


def test_mindeg_on_star_eliminates_leaves_first():
    """On a star, min degree eliminates leaves; the hub goes last."""
    import scipy.sparse as sp

    n = 8
    rows = [0] * (n - 1) + list(range(1, n))
    cols = list(range(1, n)) + [0] * (n - 1)
    data = [-1.0] * (2 * (n - 1))
    A = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    A = A + sp.diags(np.full(n, n * 1.0))
    perm = minimum_degree_ordering(A)
    # Leaves (degree 1) are eliminated first; the hub only becomes
    # eliminable at the very end, when a single leaf remains.
    assert (perm[: n - 2] != 0).all()
    assert 0 in perm[-2:].tolist()
