"""Tests for the PCG solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConvergenceError
from repro.graph import regularization_shift, regularized_laplacian
from repro.linalg import cholesky, pcg


@pytest.fixture(scope="module")
def system(small_grid):
    shift = regularization_shift(small_grid, 1e-3)
    A = regularized_laplacian(small_grid, shift)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(small_grid.n)
    return A, b


def test_unpreconditioned_converges(system):
    A, b = system
    result = pcg(A, b, rtol=1e-8, maxiter=5000)
    assert result.converged
    np.testing.assert_allclose(A @ result.x, b, atol=1e-5)


def test_exact_preconditioner_one_iteration(system):
    A, b = system
    factor = cholesky(A)
    result = pcg(A, b, M_solve=factor.solve, rtol=1e-8)
    assert result.converged
    assert result.iterations <= 2


def test_preconditioner_reduces_iterations(system, small_grid):
    A, b = system
    plain = pcg(A, b, rtol=1e-8, maxiter=5000)
    # Jacobi preconditioner.
    inv_diag = 1.0 / A.diagonal()
    jacobi = pcg(A, b, M_solve=lambda r: inv_diag * r, rtol=1e-8, maxiter=5000)
    assert jacobi.converged
    assert jacobi.iterations <= plain.iterations


def test_zero_rhs(system):
    A, _ = system
    result = pcg(A, np.zeros(A.shape[0]))
    assert result.converged
    assert result.iterations == 0
    np.testing.assert_allclose(result.x, 0)


def test_initial_guess_exact(system):
    A, b = system
    exact = np.linalg.solve(A.toarray(), b)
    result = pcg(A, b, x0=exact, rtol=1e-6)
    assert result.converged
    assert result.iterations == 0


def test_warm_start_helps(system):
    A, b = system
    cold = pcg(A, b, rtol=1e-6, maxiter=5000)
    nearly = np.linalg.solve(A.toarray(), b) + 1e-6
    warm = pcg(A, b, x0=nearly, rtol=1e-6, maxiter=5000)
    assert warm.iterations < cold.iterations


def test_callable_operator(system):
    A, b = system
    A_csr = A.tocsr()
    result = pcg(lambda v: A_csr @ v, b, rtol=1e-8, maxiter=5000)
    assert result.converged


def test_relative_residual_criterion(system):
    A, b = system
    result = pcg(A, b, rtol=1e-3, maxiter=5000)
    assert result.converged
    assert result.relative_residual <= 1e-3


def test_history_recording(system):
    A, b = system
    result = pcg(A, b, rtol=1e-6, maxiter=5000, record_history=True)
    assert len(result.residual_history) == result.iterations + 1
    assert result.residual_history[-1] <= 1e-6 * result.rhs_norm


def test_maxiter_cap(system):
    A, b = system
    result = pcg(A, b, rtol=1e-14, maxiter=2)
    assert not result.converged
    assert result.iterations == 2


def test_raise_on_fail(system):
    A, b = system
    with pytest.raises(ConvergenceError):
        pcg(A, b, rtol=1e-14, maxiter=2, raise_on_fail=True)


def test_rejects_bad_operator():
    with pytest.raises(TypeError):
        pcg("not a matrix", np.ones(3))


def test_iteration_count_scales_with_sqrt_kappa():
    """CG iterations grow with condition number (sanity on theory)."""
    n = 60
    easy = sp.diags(np.linspace(1, 4, n)).tocsr()
    hard = sp.diags(np.linspace(1, 400, n)).tocsr()
    b = np.ones(n)
    easy_iters = pcg(easy, b, rtol=1e-10, maxiter=10 * n).iterations
    hard_iters = pcg(hard, b, rtol=1e-10, maxiter=10 * n).iterations
    assert hard_iters > easy_iters
