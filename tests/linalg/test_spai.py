"""Tests for Algorithm 1 (sparse approximate inverse of the Cholesky factor)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FactorizationError
from repro.graph import grid2d, regularization_shift, regularized_laplacian
from repro.linalg import cholesky, sparse_approximate_inverse
from repro.linalg.spai import spai_nnz_profile


@pytest.fixture(scope="module")
def factor(small_grid_for_spai=None):
    g = grid2d(10, 10, seed=21)
    shift = regularization_shift(g, 1e-4)
    return cholesky(regularized_laplacian(g, shift))


def test_exact_when_unpruned(factor):
    Z = sparse_approximate_inverse(factor.L, delta=0.0, keep_threshold=10**9)
    expected = np.linalg.inv(factor.L.toarray())
    np.testing.assert_allclose(Z.toarray(), expected, atol=1e-10)


def test_lower_triangular_and_nonnegative(factor):
    """Proposition 1: Z = L^-1 is lower triangular with entries >= 0."""
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    coo = Z.tocoo()
    assert (coo.row >= coo.col).all()
    assert (coo.data >= 0).all()


def test_pruning_reduces_nnz(factor):
    full = sparse_approximate_inverse(factor.L, delta=0.0, keep_threshold=10**9)
    pruned = sparse_approximate_inverse(factor.L, delta=0.1)
    assert pruned.nnz < full.nnz


def test_monotone_in_delta(factor):
    profile = spai_nnz_profile(factor.L, [0.02, 0.05, 0.1, 0.3])
    assert profile == sorted(profile, reverse=True)


def test_diagonal_preserved(factor):
    """Z~ keeps the exact diagonal 1/L_jj (never pruned below max? the
    diagonal is the column's first contribution and stays positive)."""
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    # Every column must keep at least one entry.
    lengths = np.diff(Z.indptr)
    assert (lengths >= 1).all()


def test_small_columns_kept_exactly(factor):
    """Columns with <= log n entries are not pruned (Alg. 1, line 3)."""
    n = factor.n
    exact = np.linalg.inv(factor.L.toarray())
    Z = sparse_approximate_inverse(factor.L, delta=0.99)
    keep = max(1, int(np.ceil(np.log(n))))
    for j in range(n - 1, -1, -1):
        col_exact = exact[:, j]
        nnz_exact = int(np.sum(np.abs(col_exact) > 0))
        if nnz_exact <= keep:
            col = Z[:, j].toarray().ravel()
            np.testing.assert_allclose(col, col_exact, atol=1e-10)
        else:
            break  # earlier columns depend on pruned later ones


def test_error_bound_eq19(factor):
    """Eq. (19): column errors do not amplify through the recurrence.

    If every previously computed column has error <= eps, the new
    unpruned column z*_j also has error <= eps.  We verify the global
    consequence: max column error of Z~ <= max *pruning* error injected
    at any single column.
    """
    L = factor.L
    delta = 0.1
    Z = sparse_approximate_inverse(L, delta=delta)
    exact = np.linalg.inv(L.toarray())
    col_errors = np.linalg.norm(Z.toarray() - exact, axis=0)
    # The pruning step drops entries < delta * max of a nonnegative
    # column whose max is <= max(Z) — bound the injected error.
    injected = []
    dense_z = Z.toarray()
    for j in range(factor.n):
        col = dense_z[:, j]
        maximum = col.max() if col.max() > 0 else 0.0
        injected.append(delta * maximum * np.sqrt(factor.n))
    assert col_errors.max() <= max(injected) + 1e-9


def test_approximation_quality_at_default_delta(factor):
    Z = sparse_approximate_inverse(factor.L, delta=0.1)
    exact = np.linalg.inv(factor.L.toarray())
    rel = np.abs(Z.toarray() - exact).max() / np.abs(exact).max()
    assert rel < 0.25


def test_applies_spd_inverse_roughly(factor):
    """Z~ Z~^T approximates (L L^T)^{-1} in action."""
    Z = sparse_approximate_inverse(factor.L, delta=0.05)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(factor.n)
    approx = Z.T @ (Z @ b)
    A = (factor.L @ factor.L.T).toarray()
    exact = np.linalg.solve(A, b)
    cos = approx @ exact / (np.linalg.norm(approx) * np.linalg.norm(exact))
    assert cos > 0.98


def test_rejects_bad_delta(factor):
    with pytest.raises(ValueError):
        sparse_approximate_inverse(factor.L, delta=1.0)
    with pytest.raises(ValueError):
        sparse_approximate_inverse(factor.L, delta=-0.1)


def test_rejects_missing_diagonal():
    L = sp.csc_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
    with pytest.raises(FactorizationError):
        sparse_approximate_inverse(L)


def test_identity_factor():
    Z = sparse_approximate_inverse(sp.eye(6, format="csc"))
    np.testing.assert_allclose(Z.toarray(), np.eye(6))


@given(seed=st.integers(0, 30), delta=st.sampled_from([0.0, 0.05, 0.2]))
@settings(max_examples=12, deadline=None)
def test_random_grids_nonneg_lower(seed, delta):
    g = grid2d(5, 5, seed=seed)
    shift = regularization_shift(g, 1e-3)
    f = cholesky(regularized_laplacian(g, shift))
    Z = sparse_approximate_inverse(f.L, delta=delta)
    coo = Z.tocoo()
    assert (coo.data >= -1e-12).all()
    assert (coo.row >= coo.col).all()
