"""Tests for CSC triangular solves."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import FactorizationError
from repro.linalg import solve_lower_csc, solve_upper_from_lower_csc


@pytest.fixture()
def lower_factor():
    rng = np.random.default_rng(7)
    n = 25
    dense = np.tril(rng.standard_normal((n, n)))
    dense[np.abs(dense) < 0.8] = 0.0
    np.fill_diagonal(dense, rng.uniform(1.0, 2.0, n))
    return sp.csc_matrix(dense)


def test_lower_solve(lower_factor):
    rng = np.random.default_rng(0)
    b = rng.standard_normal(lower_factor.shape[0])
    y = solve_lower_csc(lower_factor, b)
    np.testing.assert_allclose(lower_factor @ y, b, atol=1e-10)


def test_upper_solve(lower_factor):
    rng = np.random.default_rng(1)
    b = rng.standard_normal(lower_factor.shape[0])
    x = solve_upper_from_lower_csc(lower_factor, b)
    np.testing.assert_allclose(lower_factor.T @ x, b, atol=1e-10)


def test_lower_solve_matrix_rhs(lower_factor):
    rng = np.random.default_rng(2)
    B = rng.standard_normal((lower_factor.shape[0], 4))
    Y = solve_lower_csc(lower_factor, B)
    np.testing.assert_allclose(lower_factor @ Y, B, atol=1e-10)


def test_round_trip_is_spd_solve(lower_factor):
    """L L^T x = b via the two sweeps equals a dense solve."""
    rng = np.random.default_rng(3)
    b = rng.standard_normal(lower_factor.shape[0])
    A = (lower_factor @ lower_factor.T).toarray()
    x = solve_upper_from_lower_csc(lower_factor, solve_lower_csc(lower_factor, b))
    np.testing.assert_allclose(x, np.linalg.solve(A, b), rtol=1e-8)


def test_missing_diagonal_raises():
    L = sp.csc_matrix(np.array([[1.0, 0.0], [1.0, 0.0]]))
    with pytest.raises(FactorizationError):
        solve_lower_csc(L, np.ones(2))
    with pytest.raises(FactorizationError):
        solve_upper_from_lower_csc(L, np.ones(2))


def test_identity_is_noop():
    L = sp.eye(5, format="csc")
    b = np.arange(5.0)
    np.testing.assert_allclose(solve_lower_csc(L, b), b)
    np.testing.assert_allclose(solve_upper_from_lower_csc(L, b), b)
