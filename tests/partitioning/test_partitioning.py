"""Tests for Fiedler vectors and spectral bipartitioning."""

import numpy as np
import pytest

from repro.core import trace_reduction_sparsify
from repro.graph import (
    Graph,
    grid2d,
    regularization_shift,
    regularized_laplacian,
)
from repro.linalg import cholesky
from repro.partitioning import (
    cut_weight,
    fiedler_vector,
    partition_relative_error,
    spectral_bipartition,
)


@pytest.fixture(scope="module")
def barbell():
    """Two 6-cliques joined by one weak edge: the canonical test for
    spectral partitioning — the Fiedler cut must split the cliques."""
    edges = []
    for base in (0, 6):
        for i in range(6):
            for j in range(i + 1, 6):
                edges.append((base + i, base + j, 1.0))
    edges.append((5, 6, 0.01))
    return Graph.from_edges(12, edges)


def test_fiedler_separates_cliques(barbell):
    result = fiedler_vector(barbell, method="direct", steps=8, seed=0)
    labels = spectral_bipartition(result.vector)
    assert len(set(labels[:6])) == 1
    assert len(set(labels[6:])) == 1
    assert labels[0] != labels[6]


def test_fiedler_eigenvalue_close_to_lambda2(barbell):
    import scipy.linalg as sla

    result = fiedler_vector(barbell, method="direct", steps=30, seed=0)
    shift = regularization_shift(barbell)
    L = regularized_laplacian(barbell, shift).toarray()
    eigenvalues = np.sort(sla.eigvalsh(L))
    assert result.eigenvalue_estimate == pytest.approx(
        eigenvalues[1], rel=1e-2
    )


def test_fiedler_orthogonal_to_ones(barbell):
    result = fiedler_vector(barbell, method="direct", steps=5, seed=1)
    assert abs(result.vector.sum()) < 1e-8
    assert np.linalg.norm(result.vector) == pytest.approx(1.0)


def test_pcg_matches_direct_on_grid():
    grid = grid2d(20, 20, seed=81)
    direct = fiedler_vector(grid, method="direct", steps=5, seed=3)
    sparsifier = trace_reduction_sparsify(grid, edge_fraction=0.10, rounds=2)
    shift = regularization_shift(grid)
    factor = cholesky(regularized_laplacian(sparsifier.sparsifier, shift))
    iterative = fiedler_vector(
        grid, method="pcg", preconditioner=factor, steps=5, rtol=1e-8, seed=3
    )
    labels_d = spectral_bipartition(direct.vector)
    labels_i = spectral_bipartition(iterative.vector)
    assert partition_relative_error(labels_d, labels_i) < 0.02
    assert iterative.avg_iterations > 0


def test_pcg_requires_preconditioner(barbell):
    with pytest.raises(ValueError):
        fiedler_vector(barbell, method="pcg")


def test_unknown_method(barbell):
    with pytest.raises(ValueError):
        fiedler_vector(barbell, method="qr")


class TestBipartition:
    def test_balanced_split(self):
        v = np.array([-3.0, -1.0, -0.5, 0.5, 1.0, 3.0])
        labels = spectral_bipartition(v, balanced=True)
        assert labels.sum() == 3

    def test_sign_split(self):
        v = np.array([-1.0, -0.2, 0.3, 0.4, 0.5])
        labels = spectral_bipartition(v, balanced=False)
        assert labels.tolist() == [0, 0, 1, 1, 1]


class TestRelErr:
    def test_identical(self):
        labels = np.array([0, 1, 0, 1])
        assert partition_relative_error(labels, labels) == 0.0

    def test_swap_invariant(self):
        labels = np.array([0, 1, 0, 1])
        assert partition_relative_error(labels, 1 - labels) == 0.0

    def test_single_difference(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 1, 1])
        assert partition_relative_error(a, b) == pytest.approx(0.25)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            partition_relative_error(np.zeros(3), np.zeros(4))


def test_cut_weight(barbell):
    labels = np.array([0] * 6 + [1] * 6, dtype=np.int8)
    assert cut_weight(barbell, labels) == pytest.approx(0.01)
    # Fiedler cut should find this minimum-ish cut.
    result = fiedler_vector(barbell, method="direct", steps=8, seed=0)
    fiedler_cut = cut_weight(barbell, spectral_bipartition(result.vector))
    assert fiedler_cut == pytest.approx(0.01)
