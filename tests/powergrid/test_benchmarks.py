"""Tests for the synthetic PG benchmark generator."""

import numpy as np
import pytest

from repro.graph import connected_components
from repro.powergrid import PG_CASE_REGISTRY, make_pg_case

_PS = 1e-12


def test_registry_has_paper_cases():
    assert set(PG_CASE_REGISTRY) == {
        "ibmpg3t", "ibmpg4t", "ibmpg5t", "ibmpg6t", "thupg1t", "thupg2t",
    }


@pytest.mark.parametrize("name", sorted(PG_CASE_REGISTRY))
def test_case_builds(name):
    netlist, spec = make_pg_case(name, scale=0.05, seed=0)
    assert spec.name == name
    assert netlist.n > 0
    assert len(netlist.loads) >= 2
    assert len(netlist.pad_nodes()) >= 2


def test_two_planes(capsys):
    netlist, _ = make_pg_case("ibmpg3t", scale=0.1, seed=0)
    count, labels = connected_components(netlist.graph)
    assert count == 2
    # VDD plane nodes have rail 1.8, GND plane 0.0.
    half = netlist.n // 2
    np.testing.assert_allclose(netlist.rail_voltage[:half], 1.8)
    np.testing.assert_allclose(netlist.rail_voltage[half:], 0.0)


def test_caps_in_paper_range():
    netlist, _ = make_pg_case("ibmpg4t", scale=0.1, seed=1)
    assert netlist.capacitance.min() >= 1e-12
    assert netlist.capacitance.max() <= 10e-12


def test_load_signs():
    netlist, _ = make_pg_case("ibmpg5t", scale=0.08, seed=2)
    half = netlist.n // 2
    for load in netlist.loads:
        if load.node < half:
            assert load.sign == -1.0  # draws from VDD
        else:
            assert load.sign == +1.0  # returns into GND


def test_breakpoints_snap_to_10ps():
    netlist, _ = make_pg_case("ibmpg3t", scale=0.08, seed=3)
    for load in netlist.loads:
        for value in (
            load.pattern.delay,
            load.pattern.rise,
            load.pattern.width,
            load.pattern.fall,
            load.pattern.period,
        ):
            steps = value / (10 * _PS)
            assert steps == pytest.approx(round(steps), abs=1e-6)


def test_unknown_case():
    with pytest.raises(KeyError):
        make_pg_case("ibmpg99t")


def test_determinism():
    a, _ = make_pg_case("thupg1t", scale=0.05, seed=9)
    b, _ = make_pg_case("thupg1t", scale=0.05, seed=9)
    np.testing.assert_allclose(a.graph.w, b.graph.w)
    np.testing.assert_allclose(a.capacitance, b.capacitance)
