"""Tests for DC analysis (direct and PCG paths)."""

import numpy as np
import pytest

from repro.powergrid import (
    build_sparsifier_preconditioner,
    dc_solve,
    make_pg_case,
)


@pytest.fixture(scope="module")
def case():
    netlist, _ = make_pg_case("ibmpg3t", scale=0.1, seed=11)
    return netlist


def test_direct_dc_satisfies_kcl(case):
    from repro.powergrid.mna import conductance_matrix

    x, info = dc_solve(case, method="direct")
    G = conductance_matrix(case)
    rhs = case.source_vector(0.0)
    np.testing.assert_allclose(G @ x, rhs, atol=1e-6)
    assert info["method"] == "direct"


def test_pcg_dc_matches_direct(case):
    x_direct, _ = dc_solve(case, method="direct")
    factor, _, _ = build_sparsifier_preconditioner(
        case, method="proposed", edge_fraction=0.10, rounds=2, seed=0
    )
    x_pcg, info = dc_solve(case, method="pcg", preconditioner=factor,
                           rtol=1e-10)
    assert info["converged"]
    np.testing.assert_allclose(x_pcg, x_direct, atol=1e-5)


def test_pcg_requires_preconditioner(case):
    with pytest.raises(ValueError):
        dc_solve(case, method="pcg")


def test_unknown_method(case):
    with pytest.raises(ValueError):
        dc_solve(case, method="spice")


def test_dc_voltages_bracketed_by_rails(case):
    """Node voltages sit between GND and VDD at DC."""
    x, _ = dc_solve(case, method="direct")
    assert x.min() >= -1e-9
    assert x.max() <= 1.8 + 1e-9
