"""Tests for the PG netlist model and MNA assembly."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.graph import Graph
from repro.powergrid import (
    CurrentLoad,
    PowerGridNetlist,
    PulsePattern,
    capacitance_vector,
    conductance_matrix,
)
from repro.powergrid.mna import backward_euler_matrix

_PS = 1e-12


@pytest.fixture()
def tiny_netlist():
    """3-node chain: pad at node 0, load at node 2."""
    graph = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 1.0)])
    pattern = PulsePattern(1e-3, 0.0, 50 * _PS, 100 * _PS, 50 * _PS, 1000 * _PS)
    return PowerGridNetlist(
        graph=graph,
        capacitance=np.array([1e-12, 2e-12, 3e-12]),
        pad_conductance=np.array([100.0, 0.0, 0.0]),
        rail_voltage=np.array([1.0, 1.0, 1.0]),
        loads=[CurrentLoad(2, pattern, sign=-1.0)],
    )


def test_conductance_matrix(tiny_netlist):
    G = conductance_matrix(tiny_netlist).toarray()
    expected = np.array(
        [[102.0, -2.0, 0.0], [-2.0, 3.0, -1.0], [0.0, -1.0, 1.0]]
    )
    np.testing.assert_allclose(G, expected)


def test_conductance_is_spd(tiny_netlist):
    G = conductance_matrix(tiny_netlist).toarray()
    assert np.linalg.eigvalsh(G).min() > 0


def test_capacitance_vector(tiny_netlist):
    np.testing.assert_allclose(
        capacitance_vector(tiny_netlist), [1e-12, 2e-12, 3e-12]
    )


def test_backward_euler_matrix(tiny_netlist):
    h = 10 * _PS
    A = backward_euler_matrix(tiny_netlist, h).toarray()
    G = conductance_matrix(tiny_netlist).toarray()
    np.testing.assert_allclose(
        A, G + np.diag(tiny_netlist.capacitance / h)
    )


def test_source_vector_includes_pads_and_loads(tiny_netlist):
    # At the pulse plateau the load draws 1 mA out of node 2.
    u = tiny_netlist.source_vector(100 * _PS)
    np.testing.assert_allclose(u, [100.0, 0.0, -1e-3])


def test_pad_nodes(tiny_netlist):
    assert tiny_netlist.pad_nodes().tolist() == [0]


def test_validation_rejects_bad_shapes():
    graph = Graph.from_edges(2, [(0, 1, 1.0)])
    with pytest.raises(SimulationError):
        PowerGridNetlist(
            graph=graph,
            capacitance=np.ones(3),
            pad_conductance=np.array([1.0, 0.0]),
            rail_voltage=np.ones(2),
        )


def test_validation_rejects_no_pads():
    graph = Graph.from_edges(2, [(0, 1, 1.0)])
    with pytest.raises(SimulationError):
        PowerGridNetlist(
            graph=graph,
            capacitance=np.ones(2) * 1e-12,
            pad_conductance=np.zeros(2),
            rail_voltage=np.ones(2),
        )


def test_validation_rejects_bad_load_node():
    graph = Graph.from_edges(2, [(0, 1, 1.0)])
    pattern = PulsePattern(1e-3, 0, 1e-12, 0, 1e-12, 1e-9)
    with pytest.raises(SimulationError):
        PowerGridNetlist(
            graph=graph,
            capacitance=np.ones(2) * 1e-12,
            pad_conductance=np.array([1.0, 0.0]),
            rail_voltage=np.ones(2),
            loads=[CurrentLoad(5, pattern)],
        )


def test_dc_voltage_drop(tiny_netlist):
    """DC with constant load: V follows pad - I*R along the chain."""
    from repro.powergrid import dc_solve

    x, info = dc_solve(tiny_netlist, method="direct")
    # At t=0 the load is 0 (pulse starts rising at t=0+), so all nodes
    # sit at the pad-driven equilibrium ~ 1.0 V.
    np.testing.assert_allclose(x, 1.0, rtol=1e-9)
