"""Tests for transient simulation (direct vs sparsifier-PCG, Fig. 1)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.powergrid import (
    build_sparsifier_preconditioner,
    make_pg_case,
    simulate_transient_direct,
    simulate_transient_pcg,
)
from repro.powergrid.transient import max_probe_difference

_PS = 1e-12


@pytest.fixture(scope="module")
def small_case():
    netlist, _ = make_pg_case("ibmpg3t", scale=0.12, seed=4)
    vdd_probe = netlist.loads[0].node
    gnd_probe = netlist.loads[-1].node
    return netlist, vdd_probe, gnd_probe


@pytest.fixture(scope="module")
def direct_run(small_case):
    netlist, vdd, gnd = small_case
    return simulate_transient_direct(
        netlist, t_end=1.5e-9, step=10 * _PS, probes=[vdd, gnd]
    )


@pytest.fixture(scope="module")
def pcg_run(small_case):
    netlist, vdd, gnd = small_case
    factor, _, _ = build_sparsifier_preconditioner(
        netlist, method="proposed", edge_fraction=0.10, rounds=2
    )
    return simulate_transient_pcg(
        netlist, factor, t_end=1.5e-9, probes=[vdd, gnd]
    )


def test_direct_step_count(direct_run):
    assert direct_run.steps == 150  # 1.5 ns / 10 ps
    assert len(direct_run.times) == direct_run.steps + 1


def test_direct_records_probes(direct_run, small_case):
    _, vdd, gnd = small_case
    assert len(direct_run.probe(vdd)) == direct_run.steps + 1
    assert len(direct_run.probe(gnd)) == direct_run.steps + 1


def test_vdd_droop_is_physical(direct_run, small_case):
    """VDD node stays below rail and above a sane droop bound."""
    _, vdd, _ = small_case
    v = direct_run.probe(vdd)
    assert v.max() <= 1.8 + 1e-9
    assert v.min() > 1.0  # droop bounded


def test_gnd_bounce_is_physical(direct_run, small_case):
    _, _, gnd = small_case
    v = direct_run.probe(gnd)
    assert v.min() >= -1e-9
    assert v.max() < 0.8


def test_pcg_uses_fewer_steps(direct_run, pcg_run):
    """Variable stepping (<=200 ps) takes far fewer steps than 10 ps."""
    assert pcg_run.steps < direct_run.steps


def test_pcg_converges_every_step(pcg_run):
    assert pcg_run.avg_iterations > 0
    assert pcg_run.avg_iterations < 100


def test_waveforms_agree(direct_run, pcg_run, small_case):
    """Fig. 1 criterion: direct vs iterative differ by < 16 mV."""
    _, vdd, gnd = small_case
    for node in (vdd, gnd):
        assert max_probe_difference(direct_run, pcg_run, node) < 16e-3


def test_memory_reported(direct_run, pcg_run):
    assert direct_run.memory_bytes > 0
    assert pcg_run.memory_bytes > 0
    # The sparsifier factor should be leaner than the full factor.
    assert pcg_run.memory_bytes <= direct_run.memory_bytes


def test_grass_preconditioner_also_works(small_case):
    netlist, vdd, _ = small_case
    factor, seconds, result = build_sparsifier_preconditioner(
        netlist, method="grass", edge_fraction=0.10, rounds=2
    )
    run = simulate_transient_pcg(netlist, factor, t_end=0.5e-9, probes=[vdd])
    assert run.steps > 0
    assert np.isfinite(run.probe(vdd)).all()


def test_unknown_sparsifier_method(small_case):
    netlist, _, _ = small_case
    with pytest.raises(ValueError):
        build_sparsifier_preconditioner(netlist, method="magic")


def test_direct_validates_step(small_case):
    netlist, _, _ = small_case
    with pytest.raises(SimulationError):
        simulate_transient_direct(netlist, t_end=1e-9, step=0.0)
    with pytest.raises(SimulationError):
        simulate_transient_direct(netlist, t_end=1e-12, step=1e-11)


def test_steps_never_cross_breakpoints(pcg_run, small_case):
    netlist, _, _ = small_case
    from repro.powergrid import breakpoints_union

    points = breakpoints_union(netlist.load_patterns(), 1.5e-9)
    times = pcg_run.times
    for bp in points:
        if bp >= times[-1]:
            continue
        # Every breakpoint coincides with some accepted time point.
        assert np.any(np.isclose(times, bp, rtol=0, atol=1e-18))


def test_steps_capped(pcg_run):
    assert np.diff(pcg_run.times).max() <= 200 * _PS + 1e-18
