"""Tests for the varied-step direct transient solver (step-policy ablation)."""

import numpy as np
import pytest

from repro.powergrid import make_pg_case, simulate_transient_direct
from repro.powergrid.transient import (
    max_probe_difference,
    simulate_transient_direct_varied,
)

_PS = 1e-12


@pytest.fixture(scope="module")
def case():
    netlist, _ = make_pg_case("ibmpg3t", scale=0.1, seed=7)
    return netlist, netlist.loads[0].node


def test_varied_matches_fixed_waveform(case):
    """Both direct solvers integrate the same ODE: waveforms agree.

    Backward Euler's local error scales with h, so the 200 ps-step run
    differs from the 10 ps one by discretization error — bounded here
    by the same 16 mV criterion the paper uses between solvers.
    """
    netlist, probe = case
    fixed = simulate_transient_direct(
        netlist, t_end=1e-9, step=10 * _PS, probes=[probe]
    )
    varied = simulate_transient_direct_varied(
        netlist, t_end=1e-9, probes=[probe]
    )
    assert max_probe_difference(fixed, varied, probe) < 16e-3


def test_varied_refactors_on_step_change(case):
    netlist, _ = case
    result = simulate_transient_direct_varied(netlist, t_end=1e-9)
    assert result.extra["refactorizations"] >= 1
    # Every step-size change forces a refactorization; with pulse
    # breakpoints there are always several distinct step sizes.
    assert result.extra["refactorizations"] > 1


def test_varied_takes_fewer_steps(case):
    netlist, _ = case
    fixed = simulate_transient_direct(netlist, t_end=1e-9, step=10 * _PS)
    varied = simulate_transient_direct_varied(netlist, t_end=1e-9)
    assert varied.steps < fixed.steps


def test_method_label(case):
    netlist, _ = case
    result = simulate_transient_direct_varied(netlist, t_end=0.3e-9)
    assert result.method == "direct-varied"
    assert np.isclose(result.times[-1], 0.3e-9)
