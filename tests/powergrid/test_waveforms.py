"""Tests for pulse waveforms and breakpoint extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.powergrid import PulsePattern, breakpoints_union

_PS = 1e-12


@pytest.fixture()
def pulse():
    return PulsePattern(
        amplitude=1e-3,
        delay=100 * _PS,
        rise=50 * _PS,
        width=200 * _PS,
        fall=50 * _PS,
        period=1000 * _PS,
    )


def test_zero_before_delay(pulse):
    assert pulse.value(0.0) == 0.0
    assert pulse.value(99 * _PS) == 0.0


def test_ramp_midpoint(pulse):
    assert pulse.value(100 * _PS + 25 * _PS) == pytest.approx(0.5e-3)


def test_plateau(pulse):
    assert pulse.value(200 * _PS) == pytest.approx(1e-3)


def test_falling_edge(pulse):
    t = 100 * _PS + 50 * _PS + 200 * _PS + 25 * _PS
    assert pulse.value(t) == pytest.approx(0.5e-3)


def test_zero_after_pulse(pulse):
    assert pulse.value(500 * _PS) == 0.0


def test_periodicity(pulse):
    for t in np.linspace(100 * _PS, 1100 * _PS, 37):
        assert pulse.value(t) == pytest.approx(pulse.value(t + pulse.period))


def test_vectorized_matches_scalar(pulse):
    ts = np.linspace(0, 3e-9, 101)
    vec = pulse.value(ts)
    for t, v in zip(ts, vec):
        assert v == pytest.approx(pulse.value(float(t)))


def test_breakpoints_within_horizon(pulse):
    pts = pulse.breakpoints(2e-9)
    assert (pts > 0).all() and (pts <= 2e-9).all()
    # First period corners.
    for expected in (100e-12, 150e-12, 350e-12, 400e-12):
        assert np.any(np.isclose(pts, expected))


def test_breakpoints_union_includes_t_end(pulse):
    other = PulsePattern(1e-3, 0.0, 20 * _PS, 100 * _PS, 20 * _PS, 500 * _PS)
    pts = breakpoints_union([pulse, other], 1e-9)
    assert np.isclose(pts[-1], 1e-9)
    assert len(pts) >= len(pulse.breakpoints(1e-9))


def test_validation():
    with pytest.raises(SimulationError):
        PulsePattern(1.0, 0.0, 0.0, 1.0, 1.0, 10.0)  # zero rise
    with pytest.raises(SimulationError):
        PulsePattern(1.0, -1.0, 1.0, 1.0, 1.0, 10.0)  # negative delay
    with pytest.raises(SimulationError):
        PulsePattern(1.0, 0.0, 1.0, 5.0, 1.0, 2.0)  # period too short


@given(
    amp=st.floats(1e-4, 1e-1),
    rise=st.integers(1, 10),
    width=st.integers(0, 20),
    fall=st.integers(1, 10),
    slack=st.integers(0, 30),
)
@settings(max_examples=30, deadline=None)
def test_value_bounded_by_amplitude(amp, rise, width, fall, slack):
    period = (rise + width + fall + slack) * _PS
    p = PulsePattern(amp, 0.0, rise * _PS, width * _PS, fall * _PS, period)
    ts = np.linspace(0, 5 * period, 113)
    values = p.value(ts)
    assert (values >= -1e-18).all()
    assert (values <= amp * (1 + 1e-9)).all()
