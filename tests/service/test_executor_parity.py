"""Executor parity: the scheduler contract is backend-independent.

Every test here runs twice — once under the thread backend, once under
the process backend — and asserts the *same* observable behavior:
dedup counters, priority/FIFO ordering, cancellation/promotion,
drain-vs-cancel shutdown, warm restarts, and RunRecord fingerprints
byte-equal to a direct :func:`repro.sparsify` call (which makes the
two backends byte-equal to each other by transitivity).
"""

import pytest

from repro.api import RunRecord, list_methods, sparsify
from repro.graph import make_case
from repro.service import EXECUTOR_NAMES, SparsifierService

SOURCE = {"case": "ecology2", "scale": 0.02}
OPTS = {"edge_fraction": 0.1}


@pytest.fixture(params=EXECUTOR_NAMES)
def executor(request):
    """Both execution backends, by name."""
    return request.param


@pytest.fixture
def paused(executor, tmp_path):
    """A paused service on the parametrized backend."""
    service = SparsifierService(
        workers=1, cache_dir=tmp_path / "cache", executor=executor,
        start=False,
    )
    yield service
    service.shutdown(drain=False, timeout=30.0)


class TestDedupParity:
    def test_identical_submissions_share_one_run(self, paused):
        j1 = paused.submit(SOURCE, method="grass", options=OPTS)
        j2 = paused.submit(SOURCE, method="grass", options=OPTS)
        assert j2.dedup_of == j1.id
        assert paused.dedup_hits == 1
        paused.start()
        done1 = paused.wait(j1.id, timeout=180)
        done2 = paused.wait(j2.id, timeout=180)
        assert done1.status == done2.status == "done"
        assert paused.completed_runs == 1
        assert done1.record == done2.record


class TestOrderingParity:
    def test_priority_then_fifo_ties(self, paused):
        low1 = paused.submit(SOURCE, method="grass",
                             options={"edge_fraction": 0.1})
        high = paused.submit(SOURCE, method="grass",
                             options={"edge_fraction": 0.12},
                             priority=5)
        low2 = paused.submit(SOURCE, method="grass",
                             options={"edge_fraction": 0.14})
        paused.start()
        for job in (low1, high, low2):
            assert paused.wait(job.id, timeout=240).status == "done"
        # One worker runs strictly serially: the high-priority job
        # starts first, equal priorities start in submission order.
        assert high.started_at < low1.started_at < low2.started_at


class TestCancellationParity:
    def test_cancelling_primary_promotes_follower(self, paused):
        primary = paused.submit(SOURCE, method="grass", options=OPTS)
        follower = paused.submit(SOURCE, method="grass", options=OPTS)
        assert follower.dedup_of == primary.id
        paused.cancel(primary.id)
        assert primary.status == "cancelled"
        assert follower.dedup_of is None       # promoted to primary
        paused.start()
        assert paused.wait(follower.id, timeout=180).status == "done"
        assert paused.completed_runs == 1

    def test_cancel_shutdown_cancels_queued_jobs(self, paused):
        jobs = [
            paused.submit(SOURCE, method="grass",
                          options={"edge_fraction": frac})
            for frac in (0.1, 0.12)
        ]
        paused.shutdown(drain=False, timeout=30.0)
        assert [job.status for job in jobs] == ["cancelled"] * 2


class TestShutdownParity:
    def test_drain_shutdown_finishes_queue(self, executor, tmp_path):
        service = SparsifierService(
            workers=1, cache_dir=tmp_path / "cache", executor=executor,
        )
        jobs = [
            service.submit(SOURCE, method="grass",
                           options={"edge_fraction": frac})
            for frac in (0.1, 0.12)
        ]
        service.shutdown(drain=True, timeout=240.0)
        assert [job.status for job in jobs] == ["done"] * 2
        assert service.accepting is False


class TestFingerprintParity:
    @pytest.mark.parametrize("method", sorted(list_methods()))
    def test_record_matches_direct_sparsify(self, paused, method):
        job = paused.submit(SOURCE, method=method, options=OPTS)
        paused.start()
        paused.wait(job.id, timeout=180)
        assert job.status == "done", job.error
        served = RunRecord.from_dict(job.record)
        graph, spec = make_case("ecology2", scale=0.02, seed=0)
        direct = RunRecord.from_result(
            sparsify(graph, method, **OPTS),
            method=method, label=spec.name,
        )
        # Byte-parity with an in-process run: same fingerprint means
        # same graph, config, seed and numeric outputs — for both
        # backends and every registered method, so thread == process
        # == direct transitively.
        assert served.fingerprint() == direct.fingerprint()

    def test_warm_restart_reuses_artifacts(self, executor, tmp_path):
        cache = tmp_path / "cache"
        first = SparsifierService(workers=1, cache_dir=cache,
                                  executor=executor)
        job1 = first.submit(SOURCE, method="grass", options=OPTS)
        first.wait(job1.id, timeout=240)
        first.shutdown(timeout=60.0)
        assert job1.status == "done"

        second = SparsifierService(workers=1, cache_dir=cache,
                                   executor=executor)
        job2 = second.submit(SOURCE, method="grass", options=OPTS)
        second.wait(job2.id, timeout=240)
        stats = second.stats()
        second.shutdown(timeout=60.0)
        assert job2.status == "done"
        # The restarted service restored artifacts from the shared
        # disk cache instead of re-deriving them...
        assert stats["cache"]["hits"] > 0
        # ...and restoration is fingerprint-lossless.
        fp1 = RunRecord.from_dict(job1.record).fingerprint()
        fp2 = RunRecord.from_dict(job2.record).fingerprint()
        assert fp1 == fp2
