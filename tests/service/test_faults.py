"""Fault-injection tests: the service survives what production throws.

Three failure classes, each armed through :mod:`repro.service.faults`
and asserted end to end: a job whose run raises, a worker process
SIGKILLed mid-job, and a corrupted disk-cache entry.  In every case
the job must end failed-or-retried cleanly, followers of a dead
primary must be promoted, and the service must keep serving.
"""

import pytest

from repro.api import RunRecord
from repro.exceptions import ServiceError
from repro.service import (
    FaultInjector,
    ServiceClient,
    ServiceDaemon,
    SparsifierService,
)
from repro.service.faults import (
    InjectedFaultError,
    corrupt_cache_entries,
    maybe_delay,
    maybe_raise,
)

SOURCE = {"case": "ecology2", "scale": 0.02}
OPTS = {"edge_fraction": 0.1}


@pytest.fixture
def injector(tmp_path):
    return FaultInjector(tmp_path / "faults")


def _service(tmp_path, injector, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    return SparsifierService(faults_dir=injector.root, **kwargs)


class TestFaultInjector:
    def test_tokens_fire_exactly_once(self, injector):
        injector.arm("kill-worker", count=2)
        assert injector.armed("kill-worker") == 2
        assert injector.consume("kill-worker") == (True, None)
        assert injector.consume("kill-worker") == (True, None)
        assert injector.consume("kill-worker") == (False, None)

    def test_clear_drops_everything(self, injector):
        injector.arm("raise-worker", count=3)
        assert injector.clear() == 3
        assert injector.armed("raise-worker") == 0

    def test_maybe_raise_and_delay_hooks(self, injector):
        injector.arm("raise-worker")
        with pytest.raises(InjectedFaultError, match="stage 'worker'"):
            maybe_raise("worker", injector.root)
        maybe_raise("worker", injector.root)      # consumed: no-op now
        injector.arm("delay-scheduler", value=0.01)
        assert maybe_delay("scheduler", injector.root) == 0.01
        assert maybe_delay("scheduler", injector.root) == 0.0
        # No faults dir at all: hooks are free no-ops.
        maybe_raise("worker", None)
        assert maybe_delay("scheduler", None) == 0.0


@pytest.mark.parametrize("executor", ["thread", "process"])
class TestRaiseFault:
    def test_run_raises_fails_job_not_service(self, tmp_path, injector,
                                              executor):
        service = _service(tmp_path, injector, executor=executor)
        try:
            injector.arm("raise-worker")
            bad = service.submit(SOURCE, method="grass", options=OPTS)
            service.wait(bad.id, timeout=240)
            assert bad.status == "failed"
            assert "InjectedFaultError" in bad.error
            # The worker survived; the next identical job completes.
            good = service.submit(SOURCE, method="grass", options=OPTS)
            service.wait(good.id, timeout=240)
            assert good.status == "done"
        finally:
            service.shutdown(drain=False, timeout=30.0)


class TestKilledWorker:
    def test_killed_worker_job_is_retried_once(self, tmp_path,
                                               injector):
        service = _service(tmp_path, injector, executor="process")
        try:
            injector.arm("kill-worker")
            job = service.submit(SOURCE, method="grass", options=OPTS)
            service.wait(job.id, timeout=240)
            assert job.status == "done"
            assert job.attempts == 2          # crashed once, retried
            assert service.stats()["worker_restarts"] == 1
        finally:
            service.shutdown(drain=False, timeout=30.0)

    def test_permanent_crash_fails_primary_promotes_follower(
            self, tmp_path, injector):
        service = _service(tmp_path, injector, executor="process",
                           retries=1, start=False)
        try:
            injector.arm("kill-worker", count=2)   # exhausts retries=1
            primary = service.submit(SOURCE, method="grass",
                                     options=OPTS)
            follower = service.submit(SOURCE, method="grass",
                                      options=OPTS)
            assert follower.dedup_of == primary.id
            service.start()
            service.wait(primary.id, timeout=240)
            service.wait(follower.id, timeout=240)
            # Only the crashed primary fails; the follower asked for a
            # result the crash says nothing about, so it re-ran as its
            # own primary and completed.
            assert primary.status == "failed"
            assert "WorkerCrashError" in primary.error
            assert primary.attempts == 2
            assert follower.status == "done"
            assert follower.dedup_of is None
            assert service.stats()["worker_restarts"] == 2
            # The service keeps serving afterwards.
            after = service.submit(SOURCE, method="grass",
                                   options={"edge_fraction": 0.12})
            service.wait(after.id, timeout=240)
            assert after.status == "done"
        finally:
            service.shutdown(drain=False, timeout=30.0)

    def test_zero_retries_fails_on_first_crash(self, tmp_path,
                                               injector):
        service = _service(tmp_path, injector, executor="process",
                           retries=0)
        try:
            injector.arm("kill-worker")
            job = service.submit(SOURCE, method="grass", options=OPTS)
            service.wait(job.id, timeout=240)
            assert job.status == "failed"
            assert job.attempts == 1
        finally:
            service.shutdown(drain=False, timeout=30.0)


class TestCorruptedCache:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_corrupted_entries_are_rebuilt_not_fatal(self, tmp_path,
                                                     injector,
                                                     executor):
        cache = tmp_path / "cache"
        first = _service(tmp_path, injector, executor=executor)
        job1 = first.submit(SOURCE, method="grass", options=OPTS)
        first.wait(job1.id, timeout=240)
        first.shutdown(timeout=60.0)
        assert job1.status == "done"

        # Clobber every stored artifact byte-for-byte.
        corrupted = corrupt_cache_entries(cache, count=1_000_000)
        assert corrupted, "expected on-disk artifacts to corrupt"

        second = _service(tmp_path, injector, executor=executor)
        try:
            job2 = second.submit(SOURCE, method="grass", options=OPTS)
            second.wait(job2.id, timeout=240)
            assert job2.status == "done"
            fp1 = RunRecord.from_dict(job1.record).fingerprint()
            fp2 = RunRecord.from_dict(job2.record).fingerprint()
            assert fp1 == fp2      # rebuilt, not silently wrong
        finally:
            second.shutdown(drain=False, timeout=30.0)


class TestDaemonUnderFaults:
    def test_healthz_stays_200_across_a_worker_kill(self, tmp_path,
                                                    injector):
        service = _service(tmp_path, injector, executor="process")
        with ServiceDaemon(service=service) as daemon:
            client = ServiceClient(daemon.url)
            injector.arm("kill-worker")
            job = client.submit(case="ecology2", scale=0.02,
                                method="grass", edge_fraction=0.1)
            # Liveness must not flicker while a worker is being
            # killed and respawned under a running job.
            assert client.health()["status"] == "ok"
            done = client.wait(job["id"], timeout=240)
            assert done["status"] == "done"
            assert done["attempts"] == 2
            health = client.health()
            assert health["status"] == "ok"
            assert health["executor"] == "process"
            assert client.stats()["worker_restarts"] == 1

    def test_injected_failure_surfaces_in_job_error(self, tmp_path,
                                                    injector):
        service = _service(tmp_path, injector, executor="process")
        with ServiceDaemon(service=service) as daemon:
            client = ServiceClient(daemon.url)
            injector.arm("raise-worker")
            job = client.submit(case="ecology2", scale=0.02,
                                method="grass", edge_fraction=0.1)
            done = client.wait(job["id"], timeout=240)
            assert done["status"] == "failed"
            assert "InjectedFaultError" in done["error"]
            with pytest.raises(ServiceError, match="failed"):
                client.result(job["id"], wait=False)
