"""Evolving-graph sessions through the service, on both backends.

The scheduler holds the durable session description plus a replay
ledger of applied batches, while the live
:class:`~repro.incremental.EvolvingSparsifier` lives in the execution
backend.  Every test in the parity class runs under the thread AND the
process executor and asserts against a direct in-process replay of the
same stream — which makes the two backends byte-equal to each other by
transitivity, and proves batch dicts survive the process boundary.
"""

import pytest

from repro.api import RunRecord
from repro.exceptions import IncrementalError, ServiceError
from repro.incremental import EvolvingSparsifier
from repro.service import (
    EXECUTOR_NAMES,
    FaultInjector,
    ServiceClient,
    ServiceDaemon,
    SparsifierService,
    load_graph_source,
)

SOURCE = {"case": "ecology2", "scale": 0.02}
OPTS = {"edge_fraction": 0.15}
BATCHES = (
    {"insert": [[0, 37, 1.0]], "delete": [[0, 1]]},
    {"insert": [[5, 40, 2.0], [2, 50, 1.5]], "delete": []},
)


def _strip_seconds(entry: dict) -> dict:
    return {k: v for k, v in entry.items() if k != "seconds"}


def _local_replay():
    """The same stream applied directly, no service in between."""
    graph, label = load_graph_source(SOURCE, seed=0)
    evolving = EvolvingSparsifier(graph, "proposed", label=label,
                                  **OPTS)
    for batch in BATCHES:
        evolving.apply_batch(batch=batch)
    return evolving


@pytest.fixture(params=EXECUTOR_NAMES)
def executor(request):
    return request.param


@pytest.fixture
def service(executor, tmp_path):
    service = SparsifierService(
        workers=1, cache_dir=tmp_path / "cache", executor=executor,
    )
    yield service
    service.shutdown(drain=False, timeout=30.0)


class TestParity:
    def test_stream_matches_direct_replay(self, service):
        session = service.create_graph(SOURCE, options=OPTS)
        graph_id = session["id"]
        entries = [
            service.patch_graph(graph_id, batch=batch)["entry"]
            for batch in BATCHES
        ]
        export = service.graph_sparsifier(graph_id)

        local = _local_replay()
        assert export["summary"] == local.summary()
        assert [_strip_seconds(e) for e in entries] == [
            _strip_seconds(e) for e in local.record.entries
        ]
        assert RunRecord.from_dict(export["record"]).fingerprint() == \
            local.base_record.fingerprint()
        exported_delta = dict(export["delta"])
        local_delta = local.record.to_dict()
        assert [
            _strip_seconds(e) for e in exported_delta.pop("entries")
        ] == [_strip_seconds(e) for e in local_delta.pop("entries")]
        assert exported_delta == local_delta

    def test_sessions_are_described_and_listed(self, service):
        session = service.create_graph(SOURCE, options=OPTS,
                                       label="evolving")
        listed = service.graph_sessions()
        assert [s["id"] for s in listed] == [session["id"]]
        described = service.graph_session(session["id"])
        assert described["source"] == SOURCE
        assert described["summary"]["label"] == "evolving"
        assert described["summary"]["sparsifier_edges"] > 0

    def test_delete_frees_the_slot(self, service):
        session = service.create_graph(SOURCE, options=OPTS)
        gone = service.delete_graph(session["id"])
        assert gone["deleted"] is True
        assert service.graph_sessions() == []
        with pytest.raises(ServiceError, match="unknown graph id"):
            service.patch_graph(session["id"], batch=BATCHES[0])

    def test_unknown_graph_id_raises(self, service):
        with pytest.raises(ServiceError, match="unknown graph id"):
            service.graph_sparsifier("graph-999999")

    def test_non_incremental_method_is_rejected(self, service):
        with pytest.raises(IncrementalError,
                           match="does not support incremental"):
            service.create_graph(SOURCE, method="grass",
                                 options={"edge_fraction": 0.1})
        assert service.graph_sessions() == []   # no half-open session

    def test_bad_batch_leaves_session_replayable(self, service):
        session = service.create_graph(SOURCE, options=OPTS)
        graph_id = session["id"]
        with pytest.raises(IncrementalError, match="absent edge"):
            service.patch_graph(graph_id,
                                deletes=[(5000, 5001)])
        # The failed batch never entered the ledger: later patches and
        # exports behave as if it was never sent.
        entry = service.patch_graph(graph_id, batch=BATCHES[0])["entry"]
        assert entry["batch"] == 0
        assert service.stats()["graph_patches"] == 1

    def test_stats_count_sessions_and_patches(self, service):
        assert service.stats()["graph_sessions"] == 0
        session = service.create_graph(SOURCE, options=OPTS)
        service.patch_graph(session["id"], batch=BATCHES[0])
        stats = service.stats()
        assert stats["graph_sessions"] == 1
        assert stats["graph_patches"] == 1


class TestLimits:
    def test_session_limit_is_enforced(self, tmp_path):
        service = SparsifierService(
            workers=1, cache_dir=tmp_path / "cache", max_sessions=1,
        )
        try:
            service.create_graph(SOURCE, options=OPTS)
            with pytest.raises(ServiceError,
                               match="graph-session limit"):
                service.create_graph({"case": "ecology2",
                                      "scale": 0.03},
                                     options=OPTS)
        finally:
            service.shutdown(drain=False, timeout=30.0)


class TestCrashReplay:
    def test_killed_worker_replays_the_ledger(self, tmp_path):
        """A SIGKILLed worker must not lose session state: the retry

        ships the full ledger, so the fresh worker rebuilds the
        evolving sparsifier and the patch lands as if nothing died."""
        injector = FaultInjector(tmp_path / "faults")
        service = SparsifierService(
            workers=1, cache_dir=tmp_path / "cache",
            executor="process", faults_dir=injector.root,
        )
        try:
            session = service.create_graph(SOURCE, options=OPTS)
            graph_id = session["id"]
            service.patch_graph(graph_id, batch=BATCHES[0])
            injector.arm("kill-worker")
            result = service.patch_graph(graph_id, batch=BATCHES[1])
            assert service.stats()["worker_restarts"] >= 1
            local = _local_replay()
            assert result["summary"] == local.summary()
            export = service.graph_sparsifier(graph_id)
            assert RunRecord.from_dict(
                export["record"]
            ).fingerprint() == local.base_record.fingerprint()
        finally:
            service.shutdown(drain=False, timeout=30.0)


class TestHttpSurface:
    def test_full_lifecycle_over_http(self, tmp_path):
        with ServiceDaemon(workers=1,
                           cache_dir=tmp_path / "cache") as daemon:
            client = ServiceClient(daemon.url)
            session = client.create_graph(case="ecology2", scale=0.02,
                                          options=OPTS)
            graph_id = session["id"]
            patched = client.patch_graph(
                graph_id, inserts=[(0, 37, 1.0)], deletes=[(0, 1)]
            )
            assert patched["entry"]["inserted"] == 1
            assert patched["entry"]["deleted"] == 1
            assert [s["id"] for s in client.graphs()] == [graph_id]
            assert client.graph(graph_id)["id"] == graph_id
            export = client.graph_sparsifier(graph_id)
            assert set(export) == {"id", "summary", "record", "delta"}
            assert export["delta"]["entries"][0]["batch"] == 0
            assert client.delete_graph(graph_id)["deleted"] is True

    def test_http_error_mapping(self, tmp_path):
        with ServiceDaemon(workers=1,
                           cache_dir=tmp_path / "cache") as daemon:
            client = ServiceClient(daemon.url)
            with pytest.raises(ServiceError, match="404"):
                client.patch_graph("graph-999999",
                                   inserts=[(0, 1, 1.0)])
            with pytest.raises(ServiceError, match="404"):
                client.graph_sparsifier("graph-999999")
            with pytest.raises(ServiceError,
                               match="does not support incremental"):
                client.create_graph(case="ecology2", scale=0.02,
                                    method="grass",
                                    options={"edge_fraction": 0.1})
            session = client.create_graph(case="ecology2", scale=0.02,
                                          options=OPTS)
            with pytest.raises(ServiceError,
                               match="IncrementalError.*absent edge"):
                client.patch_graph(session["id"],
                                   deletes=[(5000, 5001)])
