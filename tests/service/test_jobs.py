"""Tests for the service job model (spec/job JSON round-trips,
graph-source loading and validation)."""

import numpy as np
import pytest

from repro.exceptions import ServiceError, UnknownOptionError
from repro.graph import grid2d, make_case, write_graph_mtx
from repro.service import Job, JobSpec, graph_source_key, load_graph_source


class TestGraphSource:
    def test_case_source_matches_make_case(self):
        graph, label = load_graph_source(
            {"case": "ecology2", "scale": 0.02}
        )
        expected, spec = make_case("ecology2", scale=0.02, seed=0)
        assert label == spec.name
        assert np.array_equal(graph.u, expected.u)
        assert np.array_equal(graph.w, expected.w)

    def test_mtx_path_source(self, tmp_path, small_grid):
        path = tmp_path / "g.mtx"
        write_graph_mtx(path, small_grid)
        graph, label = load_graph_source({"mtx_path": str(path)})
        assert label == str(path)
        assert graph.n == small_grid.n
        assert np.allclose(np.sort(graph.w), np.sort(small_grid.w))

    def test_inline_mtx_source(self, tmp_path, small_grid):
        path = tmp_path / "g.mtx"
        write_graph_mtx(path, small_grid)
        graph, label = load_graph_source({"mtx": path.read_text()})
        assert label == "upload"
        assert graph.n == small_grid.n

    @pytest.mark.parametrize("source", [
        {},                                       # no source at all
        {"case": "ecology2", "mtx": "x"},         # two sources
        {"case": "ecology2", "bogus": 1},         # unknown key
        {"mtx_path": "/does/not/exist.mtx"},      # missing file
        {"case": "no-such-case"},                 # unknown case
        {"mtx_path": "/x.mtx", "scale": 0.5},     # scale is case-only
        {"mtx": "%%x", "scale": 0.5},             # (silent no-op ban)
        "not-a-dict",
    ])
    def test_bad_sources_raise(self, source):
        with pytest.raises(ServiceError):
            load_graph_source(source)

    def test_source_key_hashes_inline_content(self, tmp_path, small_grid):
        path = tmp_path / "g.mtx"
        write_graph_mtx(path, small_grid)
        text = path.read_text()
        key = graph_source_key({"mtx": text})
        assert text not in key                    # content is digested
        assert key == graph_source_key({"mtx": text})
        assert key != graph_source_key({"mtx": text + "\n%extra"})

    def test_source_key_is_order_insensitive(self):
        assert graph_source_key({"case": "ecology2", "scale": 0.1}) == \
            graph_source_key({"scale": 0.1, "case": "ecology2"})


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(
            graph={"case": "ecology2", "scale": 0.1},
            method="grass", options={"edge_fraction": 0.05},
            label="eco", priority=3, evaluate=True,
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_validate_rejects_inapplicable_options(self):
        spec = JobSpec(graph={"case": "ecology2"}, method="fegrass",
                       options={"rounds": 3})
        with pytest.raises(UnknownOptionError):
            spec.validate()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ServiceError):
            JobSpec.from_dict({"graph": {"case": "ecology2"},
                               "bogus": 1})
        with pytest.raises(ServiceError):
            JobSpec.from_dict({"method": "grass"})   # graph missing


class TestJob:
    def _job(self) -> Job:
        return Job(
            id="job-000007",
            spec=JobSpec(graph={"case": "ecology2"}, method="proposed",
                         options={"rounds": 2}),
            status="done", created_at=1.0, started_at=2.0,
            finished_at=3.0, record={"method": "proposed"},
            dedup_of="job-000006",
        )

    def test_json_round_trip(self):
        job = self._job()
        assert Job.from_json(job.to_json()) == job

    def test_listing_form_elides_record(self):
        data = self._job().to_dict(include_record=False)
        assert "record" not in data
        assert data["has_record"] is True

    def test_finished_flag_follows_status(self):
        job = self._job()
        for status, finished in [("queued", False), ("running", False),
                                 ("done", True), ("failed", True),
                                 ("cancelled", True)]:
            job.status = status
            assert job.finished is finished

    def test_unknown_status_rejected(self):
        data = self._job().to_dict()
        data["status"] = "exploded"
        with pytest.raises(ServiceError):
            Job.from_dict(data)
