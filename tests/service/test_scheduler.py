"""Tests for the in-process scheduler: dedup, priority, cancellation,
drain, failure isolation and warm restarts."""

import time

import pytest

from repro.api import RunRecord, sparsify
from repro.api.registry import _REGISTRY, MethodSpec
from repro.core.base import BaseSparsifierConfig
from repro.exceptions import ServiceError, UnknownOptionError
from repro.graph import make_case
from repro.service import SparsifierService

SOURCE = {"case": "ecology2", "scale": 0.02}
OPTS = {"edge_fraction": 0.1}


@pytest.fixture
def paused(tmp_path):
    """A service whose workers have not started: submissions queue up."""
    service = SparsifierService(
        workers=1, cache_dir=tmp_path / "cache", start=False
    )
    yield service
    service.shutdown(drain=False, timeout=10.0)


def _inject_method(name, runner):
    assert name not in _REGISTRY
    _REGISTRY[name] = MethodSpec(
        name=name, runner=runner, config_cls=BaseSparsifierConfig
    )


@pytest.fixture
def failing_method():
    name = "svc-test-failing"

    def _boom(graph, config, artifacts=None):
        raise RuntimeError("boom")

    _inject_method(name, _boom)
    yield name
    del _REGISTRY[name]


class TestDedup:
    def test_identical_submissions_share_one_run(self, paused):
        j1 = paused.submit(SOURCE, method="grass", options=OPTS)
        j2 = paused.submit(SOURCE, method="grass", options=OPTS)
        assert j2.dedup_of == j1.id
        assert paused.dedup_hits == 1
        paused.start()
        done1 = paused.wait(j1.id, timeout=120)
        done2 = paused.wait(j2.id, timeout=120)
        assert done1.status == done2.status == "done"
        assert paused.completed_runs == 1          # exactly one run
        assert done1.record == done2.record
        assert done2.started_at == done1.started_at

    def test_option_spelling_coalesces_via_resolved_config(self, paused):
        # Defaults spelled out vs. omitted resolve to the same config.
        j1 = paused.submit(SOURCE, method="grass",
                           options={"edge_fraction": 0.1})
        j2 = paused.submit(SOURCE, method="grass",
                           options={"edge_fraction": 0.1, "seed": 0})
        assert j2.dedup_of == j1.id

    def test_different_configs_do_not_coalesce(self, paused):
        j1 = paused.submit(SOURCE, method="grass", options=OPTS)
        j2 = paused.submit(SOURCE, method="grass",
                           options={"edge_fraction": 0.2})
        j3 = paused.submit(SOURCE, method="fegrass", options=OPTS)
        assert j2.dedup_of is None
        assert j3.dedup_of is None
        assert j1.dedup_of is None
        assert paused.dedup_hits == 0

    def test_dedup_against_running_primary(self, tmp_path):
        name = "svc-test-slow"
        grass = _REGISTRY["grass"]

        def _slow(graph, config, artifacts=None):
            time.sleep(0.4)
            return grass.runner(
                graph, grass.config_cls(edge_fraction=0.1),
                artifacts=None,
            )

        _inject_method(name, _slow)
        try:
            service = SparsifierService(
                workers=1, cache_dir=tmp_path / "cache"
            )
            j1 = service.submit(SOURCE, method=name)
            deadline = time.time() + 30
            while service.job(j1.id).status == "queued":
                assert time.time() < deadline
                time.sleep(0.01)
            j2 = service.submit(SOURCE, method=name)  # primary running
            assert j2.dedup_of == j1.id
            assert service.wait(j2.id, timeout=120).status == "done"
            assert service.completed_runs == 1
            service.shutdown()
        finally:
            del _REGISTRY[name]

    def test_options_seed_selects_a_distinct_generated_graph(
            self, paused):
        """Regression: the graph memo must key on the effective
        generation seed — a second submission with a different
        options seed is a *different* generated case, not a cache
        hit on the first seed's graph."""
        j1 = paused.submit(SOURCE, method="grass",
                           options={"edge_fraction": 0.1, "seed": 1})
        j2 = paused.submit(SOURCE, method="grass",
                           options={"edge_fraction": 0.1, "seed": 2})
        assert j2.dedup_of is None
        assert j1._fingerprint != j2._fingerprint

    def test_finished_jobs_do_not_absorb_new_ones(self, tmp_path):
        service = SparsifierService(workers=1, cache_dir=tmp_path / "c")
        j1 = service.submit(SOURCE, method="grass", options=OPTS)
        service.wait(j1.id, timeout=120)
        j2 = service.submit(SOURCE, method="grass", options=OPTS)
        assert j2.dedup_of is None                 # warm rerun, not dedup
        assert service.wait(j2.id, timeout=120).status == "done"
        assert service.completed_runs == 2
        service.shutdown()


class TestResultFidelity:
    def test_record_fingerprint_matches_direct_sparsify(self, tmp_path):
        service = SparsifierService(workers=1, cache_dir=tmp_path / "c")
        job = service.submit(SOURCE, method="grass", options=OPTS)
        record = RunRecord.from_dict(
            service.wait(job.id, timeout=120).record
        )
        service.shutdown()

        graph, spec = make_case("ecology2", scale=0.02, seed=0)
        direct = RunRecord.from_result(
            sparsify(graph, "grass", **OPTS),
            method="grass", label=spec.name,
        )
        assert record.fingerprint() == direct.fingerprint()

    def test_sharded_jobs_route_through_the_pipeline(self, tmp_path):
        service = SparsifierService(workers=1, cache_dir=tmp_path / "c")
        job = service.submit(
            SOURCE, method="grass",
            options={"edge_fraction": 0.1, "shards": 2},
        )
        record = service.wait(job.id, timeout=120).record
        service.shutdown()
        assert record["sharding"] is not None
        assert record["sharding"]["shards"] == 2
        assert len(record["sharding"]["per_shard"]) == 2

    def test_evaluate_attaches_quality(self, tmp_path):
        service = SparsifierService(workers=1, cache_dir=tmp_path / "c")
        job = service.submit(SOURCE, method="grass", options=OPTS,
                             evaluate=True)
        record = service.wait(job.id, timeout=120).record
        service.shutdown()
        assert record["quality"]["kappa"] > 1.0
        assert "evaluate_seconds" in record["timings"]


class TestWarmRestart:
    def test_second_service_on_same_root_is_warm(self, tmp_path):
        cache = tmp_path / "shared-cache"
        first = SparsifierService(workers=1, cache_dir=cache)
        j1 = first.submit(SOURCE, method="grass", options=OPTS)
        rec1 = RunRecord.from_dict(first.wait(j1.id, timeout=120).record)
        assert sum(
            sum(s.session.stats()["disk"]["stores"].values())
            for s in first._sessions.values()
        ) > 0
        first.shutdown()

        second = SparsifierService(workers=1, cache_dir=cache)
        j2 = second.submit(SOURCE, method="grass", options=OPTS)
        rec2 = RunRecord.from_dict(
            second.wait(j2.id, timeout=120).record
        )
        stats = second.stats()
        second.shutdown()
        # Setup re-derivation was skipped: artifacts restored from disk,
        # nothing newly stored, and the restore time is attributed.
        assert stats["cache"]["hits"] > 0
        assert stats["cache"]["stores"] == 0
        assert rec2.timings["restore_seconds"] > 0
        assert rec2.fingerprint() == rec1.fingerprint()


class TestLifecycle:
    def test_priority_orders_the_queue(self, paused):
        low = paused.submit(SOURCE, method="grass", options=OPTS)
        high = paused.submit(SOURCE, method="fegrass",
                             options={"edge_fraction": 0.1},
                             priority=10)
        paused.start()
        paused.wait(low.id, timeout=120)
        paused.wait(high.id, timeout=120)
        assert high.started_at < low.started_at

    def test_cancel_queued_job(self, paused):
        job = paused.submit(SOURCE, method="grass", options=OPTS)
        cancelled = paused.cancel(job.id)
        assert cancelled.status == "cancelled"
        paused.start()
        other = paused.submit(SOURCE, method="fegrass",
                              options={"edge_fraction": 0.1})
        paused.wait(other.id, timeout=120)
        assert paused.job(job.id).status == "cancelled"
        assert paused.completed_runs == 1          # cancelled never ran

    def test_cancel_primary_promotes_follower(self, paused):
        j1 = paused.submit(SOURCE, method="grass", options=OPTS)
        j2 = paused.submit(SOURCE, method="grass", options=OPTS)
        j3 = paused.submit(SOURCE, method="grass", options=OPTS)
        assert j2.dedup_of == j1.id
        paused.cancel(j1.id)
        assert j2.dedup_of is None                 # promoted
        assert j3.dedup_of == j2.id                # re-pointed
        paused.start()
        assert paused.wait(j2.id, timeout=120).status == "done"
        assert paused.wait(j3.id, timeout=120).status == "done"
        assert paused.job(j1.id).status == "cancelled"
        assert paused.completed_runs == 1

    def test_cancel_follower_leaves_primary(self, paused):
        j1 = paused.submit(SOURCE, method="grass", options=OPTS)
        j2 = paused.submit(SOURCE, method="grass", options=OPTS)
        paused.cancel(j2.id)
        paused.start()
        assert paused.wait(j1.id, timeout=120).status == "done"
        assert paused.job(j2.id).status == "cancelled"

    def test_cancel_finished_job_raises(self, tmp_path):
        service = SparsifierService(workers=1, cache_dir=tmp_path / "c")
        job = service.submit(SOURCE, method="grass", options=OPTS)
        service.wait(job.id, timeout=120)
        with pytest.raises(ServiceError, match="cannot cancel"):
            service.cancel(job.id)
        service.shutdown()

    def test_wait_times_out(self, paused):
        job = paused.submit(SOURCE, method="grass", options=OPTS)
        with pytest.raises(ServiceError, match="timed out"):
            paused.wait(job.id, timeout=0.05)

    def test_shutdown_drains_the_queue(self, paused):
        ids = [
            paused.submit(SOURCE, method="grass",
                          options={"edge_fraction": f}).id
            for f in (0.05, 0.1, 0.15)
        ]
        paused.start()
        paused.shutdown(drain=True)
        assert [paused.job(i).status for i in ids] == ["done"] * 3
        with pytest.raises(ServiceError, match="no longer accepts"):
            paused.submit(SOURCE, method="grass", options=OPTS)

    def test_shutdown_without_drain_cancels_queued(self, paused):
        ids = [
            paused.submit(SOURCE, method="grass",
                          options={"edge_fraction": f}).id
            for f in (0.05, 0.1)
        ]
        follower = paused.submit(SOURCE, method="grass",
                                 options={"edge_fraction": 0.05})
        paused.shutdown(drain=False)
        statuses = [paused.job(i).status for i in ids]
        assert statuses == ["cancelled", "cancelled"]
        assert paused.job(follower.id).status == "cancelled"

    def test_no_drain_shutdown_keeps_followers_of_running_primary(
            self, tmp_path):
        """Regression: drain=False cancels the *queue*, but a follower
        deduplicated onto an already-running primary still inherits
        its result — the computation is already paid for."""
        name = "svc-test-slow-drain"
        grass = _REGISTRY["grass"]

        def _slow(graph, config, artifacts=None):
            time.sleep(0.5)
            return grass.runner(
                graph, grass.config_cls(edge_fraction=0.1),
                artifacts=None,
            )

        _inject_method(name, _slow)
        try:
            service = SparsifierService(
                workers=1, cache_dir=tmp_path / "cache"
            )
            primary = service.submit(SOURCE, method=name)
            deadline = time.time() + 30
            while service.job(primary.id).status == "queued":
                assert time.time() < deadline
                time.sleep(0.01)
            follower = service.submit(SOURCE, method=name)
            queued = service.submit(SOURCE, method="grass",
                                    options=OPTS)
            assert follower.dedup_of == primary.id
            service.shutdown(drain=False)
            assert service.job(primary.id).status == "done"
            assert service.job(follower.id).status == "done"
            assert follower.record == primary.record
            assert service.job(queued.id).status == "cancelled"
        finally:
            del _REGISTRY[name]

    def test_failing_job_fails_cleanly(self, paused, failing_method):
        primary = paused.submit(SOURCE, method=failing_method)
        follower = paused.submit(SOURCE, method=failing_method)
        healthy = paused.submit(SOURCE, method="grass", options=OPTS)
        paused.start()
        failed = paused.wait(primary.id, timeout=120)
        assert failed.status == "failed"
        assert "boom" in failed.error
        assert paused.wait(follower.id, timeout=120).status == "failed"
        assert paused.wait(healthy.id, timeout=120).status == "done"

    def test_drain_returns_after_a_cancelled_ghost_is_skipped(
            self, paused):
        """Regression: a cancelled job leaves a ghost heap entry; when
        a worker pops and skips it, drain() must be woken — it used to
        sleep forever on a queue that was only ghost-deep."""
        victim = paused.submit(SOURCE, method="fegrass",
                               options={"edge_fraction": 0.1})
        survivor = paused.submit(SOURCE, method="grass", options=OPTS)
        paused.cancel(victim.id)
        paused.start()
        assert paused.drain(timeout=120)
        assert paused.job(survivor.id).status == "done"
        assert paused.job(victim.id).status == "cancelled"

    def test_finished_job_ledger_is_bounded(self, tmp_path):
        service = SparsifierService(
            workers=1, cache_dir=tmp_path / "c", max_jobs=2
        )
        ids = []
        for fraction in (0.05, 0.1, 0.15):
            job = service.submit(SOURCE, method="grass",
                                 options={"edge_fraction": fraction})
            service.wait(job.id, timeout=120)
            ids.append(job.id)
        service.shutdown()
        # Oldest finished job evicted; the newest two retained.
        with pytest.raises(ServiceError, match="unknown job id"):
            service.job(ids[0])
        assert service.job(ids[1]).status == "done"
        assert service.job(ids[2]).status == "done"

    def test_finished_jobs_release_their_graph(self, tmp_path):
        service = SparsifierService(workers=1, cache_dir=tmp_path / "c")
        job = service.submit(SOURCE, method="grass", options=OPTS)
        assert job._graph is not None
        service.wait(job.id, timeout=120)
        service.shutdown()
        assert job._graph is None
        assert len(service._graphs) <= service.max_sessions

    def test_unknown_job_id_raises(self, paused):
        with pytest.raises(ServiceError, match="unknown job id"):
            paused.job("job-999999")

    def test_submit_validates_options_synchronously(self, paused):
        with pytest.raises(UnknownOptionError):
            paused.submit(SOURCE, method="fegrass",
                          options={"rounds": 3})
        with pytest.raises(ServiceError):
            paused.submit({"case": "no-such-case"})


class TestStatsAndSessions:
    def test_stats_counts_everything(self, paused, failing_method):
        paused.submit(SOURCE, method="grass", options=OPTS)
        paused.submit(SOURCE, method="grass", options=OPTS)   # follower
        doomed = paused.submit(SOURCE, method=failing_method)
        victim = paused.submit(SOURCE, method="fegrass",
                               options={"edge_fraction": 0.1})
        paused.cancel(victim.id)
        stats = paused.stats()
        assert stats["queue_depth"] == 2
        assert stats["jobs"]["queued"] == 3        # incl. the follower
        assert stats["jobs"]["cancelled"] == 1
        assert stats["dedup_hits"] == 1
        assert stats["submitted"] == 4
        paused.start()
        paused.wait(doomed.id, timeout=120)
        paused.drain(timeout=120)
        stats = paused.stats()
        assert stats["jobs"]["done"] == 2
        assert stats["jobs"]["failed"] == 1
        assert stats["completed_runs"] == 1
        assert stats["cache"]["persistent"] is True
        assert "root" in stats["cache"]

    def test_sessions_are_shared_per_graph(self, tmp_path):
        service = SparsifierService(workers=1, cache_dir=tmp_path / "c")
        a = service.submit(SOURCE, method="grass", options=OPTS)
        b = service.submit(SOURCE, method="fegrass",
                           options={"edge_fraction": 0.1})
        service.wait(a.id, timeout=120)
        service.wait(b.id, timeout=120)
        stats = service.stats()
        service.shutdown()
        assert stats["sessions"] == 1              # one graph, one session

    def test_session_lru_never_evicts_a_busy_session(self, tmp_path):
        """Eviction skips sessions whose lock is held (a job is mid-run
        on them): evicting one would spawn a duplicate session and run
        same-graph jobs unserialized."""
        service = SparsifierService(
            workers=1, cache_dir=tmp_path / "c", max_sessions=1,
            start=False,
        )
        busy = service.submit(SOURCE, method="grass", options=OPTS)
        slot = service._session_for(busy)
        assert slot.lock.acquire(blocking=False)   # simulate a run
        try:
            other = service.submit({"case": "ecology2", "scale": 0.03},
                                   method="grass", options=OPTS)
            service._session_for(other)            # triggers eviction
            assert busy._fingerprint in service._sessions  # survived
            assert other._fingerprint in service._sessions  # overshoot
        finally:
            slot.lock.release()
            service.shutdown(drain=False, timeout=10.0)

    def test_session_lru_is_bounded(self, tmp_path):
        service = SparsifierService(
            workers=1, cache_dir=tmp_path / "c", max_sessions=1
        )
        a = service.submit(SOURCE, method="grass", options=OPTS)
        b = service.submit({"case": "ecology2", "scale": 0.03},
                           method="grass", options=OPTS)
        service.wait(a.id, timeout=120)
        service.wait(b.id, timeout=120)
        stats = service.stats()
        service.shutdown()
        assert stats["sessions"] == 1
