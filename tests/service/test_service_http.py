"""End-to-end tests of the HTTP daemon + typed client + CLI verbs."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import RunRecord, sparsify
from repro.cli import main
from repro.exceptions import ServiceConnectionError, ServiceError
from repro.graph import make_case, write_graph_mtx
from repro.service import ServiceClient, ServiceDaemon, SparsifierService

SUBMIT = dict(case="ecology2", scale=0.02, method="grass",
              edge_fraction=0.1)


@pytest.fixture
def daemon(tmp_path):
    """A running daemon on an ephemeral port (1 worker, isolated cache)."""
    with ServiceDaemon(workers=1, cache_dir=tmp_path / "cache") as d:
        yield d


@pytest.fixture
def paused_daemon(tmp_path):
    """A daemon whose scheduler workers are paused: jobs only queue."""
    service = SparsifierService(
        workers=1, cache_dir=tmp_path / "cache", start=False
    )
    daemon = ServiceDaemon(service=service)
    daemon.start()
    yield daemon
    daemon.shutdown(drain=False, timeout=10.0)


class TestEndpoints:
    def test_healthz_schema(self, daemon):
        health = ServiceClient(daemon.url).health()
        assert health["status"] == "ok"
        assert set(health) == {"status", "version", "uptime_seconds",
                               "workers", "executor", "accepting"}
        import repro

        assert health["version"] == repro.__version__
        assert health["workers"] == 1
        assert health["accepting"] is True

    def test_stats_schema(self, daemon):
        stats = ServiceClient(daemon.url).stats()
        assert set(stats) >= {"queue_depth", "running", "jobs",
                              "submitted", "completed_runs",
                              "dedup_hits", "workers", "accepting",
                              "sessions", "uptime_seconds", "cache"}
        assert set(stats["jobs"]) == {"queued", "running", "done",
                                      "failed", "cancelled"}
        assert set(stats["cache"]) >= {"persistent", "hits", "misses",
                                       "stores", "evictions", "errors",
                                       "root"}

    def test_submit_poll_result_round_trip(self, daemon):
        client = ServiceClient(daemon.url)
        job = client.submit(**SUBMIT)
        assert job["status"] in ("queued", "running")
        record = RunRecord.from_dict(client.result(job["id"],
                                                   timeout=120))
        graph, spec = make_case("ecology2", scale=0.02, seed=0)
        direct = RunRecord.from_result(
            sparsify(graph, "grass", edge_fraction=0.1),
            method="grass", label=spec.name,
        )
        # The wire round trip is lossless down to the fingerprint.
        assert record.fingerprint() == direct.fingerprint()
        final = client.job(job["id"])
        assert final["status"] == "done"
        assert final["record"] == record.to_dict()

    def test_inline_mtx_upload(self, daemon, tmp_path, small_grid):
        path = tmp_path / "g.mtx"
        write_graph_mtx(path, small_grid)
        client = ServiceClient(daemon.url)
        job = client.submit(mtx_file=path, method="grass",
                            edge_fraction=0.2, label="uploaded")
        record = client.result(job["id"], timeout=120)
        assert record["graph"]["label"] == "uploaded"
        assert record["graph"]["nodes"] == small_grid.n
        # Wire responses digest the upload out instead of echoing the
        # full text back on every poll.
        for shipped in (job, client.job(job["id"]),
                        client.jobs()[0]):
            assert "mtx" not in shipped["spec"]["graph"]
            assert "mtx_sha256" in shipped["spec"]["graph"]
            assert shipped["spec"]["graph"]["mtx_chars"] == len(
                path.read_text()
            )

    def test_malformed_json_fields_are_400_not_crashes(self, daemon):
        client = ServiceClient(daemon.url)
        for body in (
            {"graph": {"case": "ecology2"}, "priority": "abc"},
            {"graph": {"case": "ecology2"}, "options": "abc"},
            {"graph": None},
        ):
            with pytest.raises(ServiceError, match="400"):
                client._request("POST", "/jobs", body)
        # Explicit nulls degrade to the field defaults, not to a 500.
        job = client._request("POST", "/jobs", {
            "graph": {"case": "ecology2", "scale": 0.02},
            "method": "grass",
            "options": {"edge_fraction": 0.1},
            "priority": None, "evaluate": None, "label": None,
        })
        assert job["spec"]["priority"] == 0
        assert client.wait(job["id"], timeout=120)["status"] == "done"

    def test_concurrent_identical_submissions_share_one_run(
            self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        j1 = client.submit(**SUBMIT)
        j2 = client.submit(**SUBMIT)
        assert j2["dedup_of"] == j1["id"]
        assert client.stats()["dedup_hits"] == 1
        paused_daemon.service.start()
        r1 = client.result(j1["id"], timeout=120)
        r2 = client.result(j2["id"], timeout=120)
        assert r1 == r2
        stats = client.stats()
        assert stats["completed_runs"] == 1        # one underlying run
        assert stats["jobs"]["done"] == 2

    def test_cancel_queued_job(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        job = client.submit(**SUBMIT)
        cancelled = client.cancel(job["id"])
        assert cancelled["status"] == "cancelled"
        with pytest.raises(ServiceError, match="409"):
            client.result(job["id"], wait=False)

    def test_cancel_finished_job_is_409(self, daemon):
        client = ServiceClient(daemon.url)
        job = client.submit(**SUBMIT)
        client.result(job["id"], timeout=120)
        with pytest.raises(ServiceError, match="409"):
            client.cancel(job["id"])

    def test_result_of_unfinished_job_is_409(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        job = client.submit(**SUBMIT)
        with pytest.raises(ServiceError, match="not finished"):
            client.result(job["id"], wait=False)

    def test_jobs_listing_elides_records(self, daemon):
        client = ServiceClient(daemon.url)
        job = client.submit(**SUBMIT)
        client.result(job["id"], timeout=120)
        listing = client.jobs()
        assert [j["id"] for j in listing] == [job["id"]]
        assert "record" not in listing[0]
        assert listing[0]["has_record"] is True

    def test_error_statuses(self, daemon):
        client = ServiceClient(daemon.url)
        with pytest.raises(ServiceError, match="404"):
            client.job("job-999999")
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/no-such-endpoint")
        with pytest.raises(ServiceError, match="400"):
            client.submit(case="no-such-case")
        with pytest.raises(ServiceError, match="400"):
            client.submit(**dict(SUBMIT, method="no-such-method"))
        with pytest.raises(ServiceError, match="400"):
            client._request("POST", "/jobs", {"graph": {}})

    def test_client_source_arg_validation(self, daemon):
        client = ServiceClient(daemon.url)
        with pytest.raises(ServiceError, match="exactly one"):
            client.submit()
        with pytest.raises(ServiceError, match="exactly one"):
            client.submit(case="ecology2", mtx_path="/x.mtx")
        # scale with a fixed-size MTX source is a hard error, not a
        # silent no-op (mirrors the CLI's inapplicable-flag contract) —
        # both client-side and server-side (raw graph dicts).
        with pytest.raises(ServiceError, match="scale"):
            client.submit(mtx_path="/x.mtx", scale=0.5)
        with pytest.raises(ServiceError, match="400"):
            client.submit(graph={"mtx_path": "/x.mtx", "scale": 0.5})
        # A missing local upload file is a clean ServiceError, not a
        # raw FileNotFoundError traceback.
        with pytest.raises(ServiceError, match="cannot read"):
            client.submit(mtx_file="/does/not/exist.mtx")

    def test_client_connection_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=2.0)
        # The sharper transport-level type, still a ServiceError.
        with pytest.raises(ServiceConnectionError, match="cannot reach"):
            client.health()


def _raw_request(url, method, path, body=None):
    """Send one raw HTTP request (malformed bodies and all); return
    ``(status, parsed JSON body, headers)``."""
    headers = {"Accept": "application/json"}
    if body is not None:
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url + path, data=body, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (response.status,
                    json.loads(response.read() or b"{}"),
                    dict(response.headers))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}"), dict(exc.headers)


#: The documented error surface, one row per way a request can be
#: wrong: (verb, path, raw body, expected status, message fragment).
ERROR_MATRIX = [
    # malformed bodies
    ("POST", "/jobs", b"{not json", 400, "not valid JSON"),
    ("POST", "/jobs", b"[1, 2]", 400, "JSON object"),
    ("POST", "/jobs", b"", 400, "JSON object"),
    ("POST", "/jobs", b'{"graph": {"case": "ecology2"}, "nope": 1}',
     400, "unknown job field"),
    # unsupported verbs
    ("PUT", "/jobs", b"{}", 405, "method PUT is not supported"),
    ("PATCH", "/jobs/job-000001", b"{}", 405,
     "method PATCH is not supported"),
    # unknown endpoints and job ids
    ("POST", "/no-such", b"{}", 404, "no such endpoint"),
    ("GET", "/no-such", None, 404, "no such endpoint"),
    ("GET", "/jobs/job-999999", None, 404, "unknown job id"),
    ("GET", "/jobs/job-999999/result", None, 404, "unknown job id"),
    ("DELETE", "/jobs/job-999999", None, 404, "unknown job id"),
    ("DELETE", "/healthz", None, 404, "no such endpoint"),
    # bad query parameters
    ("GET", "/jobs?status=bogus", None, 400, "unknown status filter"),
    ("GET", "/jobs?limit=abc", None, 400, "must be an integer"),
    ("GET", "/jobs?limit=0", None, 400, "limit must be >= 1"),
    ("GET", "/jobs?nope=1", None, 400, "unknown query parameter"),
]


class TestErrorMatrix:
    @pytest.mark.parametrize(
        "verb,path,body,status,fragment", ERROR_MATRIX,
        ids=[f"{row[0]}-{row[1]}-{row[3]}" for row in ERROR_MATRIX],
    )
    def test_documented_4xx(self, daemon, verb, path, body, status,
                            fragment):
        got, payload, headers = _raw_request(daemon.url, verb, path,
                                             body)
        assert got == status
        assert fragment in payload["error"]
        # Every error is a JSON body — never an HTML error page.
        assert headers["Content-Type"] == "application/json"
        if status == 405:
            assert "Allow" in headers

    def test_oversized_body_is_413_with_bound_in_message(self,
                                                         tmp_path):
        with ServiceDaemon(workers=1, cache_dir=tmp_path / "cache",
                           max_body_bytes=1024) as daemon:
            big = json.dumps(
                {"graph": {"mtx": "x" * 4096}, "method": "grass"}
            ).encode()
            status, payload, _ = _raw_request(daemon.url, "POST",
                                              "/jobs", big)
            assert status == 413
            assert "at most 1024" in payload["error"]
            # The daemon is unharmed and still accepts normal jobs.
            client = ServiceClient(daemon.url)
            job = client.submit(**SUBMIT)
            assert client.wait(job["id"], timeout=120)["status"] == \
                "done"

    def test_shutting_down_daemon_is_503(self, paused_daemon):
        paused_daemon.service.shutdown(drain=False, timeout=5.0)
        status, payload, _ = _raw_request(
            paused_daemon.url, "POST", "/jobs",
            json.dumps({"graph": {"case": "ecology2",
                                  "scale": 0.02}}).encode(),
        )
        assert status == 503
        assert "shutting down" in payload["error"]

    def test_jobs_listing_filters(self, paused_daemon):
        client = ServiceClient(paused_daemon.url)
        queued = client.submit(**SUBMIT)
        cancelled = client.submit(**dict(SUBMIT, edge_fraction=0.2))
        client.cancel(cancelled["id"])
        assert [j["id"] for j in client.jobs(status="queued")] == \
            [queued["id"]]
        assert [j["id"] for j in client.jobs(status="cancelled")] == \
            [cancelled["id"]]
        assert client.jobs(status="done") == []
        assert [j["id"] for j in client.jobs(limit=1)] == \
            [cancelled["id"]]                  # the most recent one


class TestDaemonWentAway:
    def test_wait_aborts_immediately_when_daemon_dies(self, tmp_path):
        """A dead daemon must fail a waiting client *now*, not after
        the full wait timeout burns down against a dead socket."""
        service = SparsifierService(
            workers=1, cache_dir=tmp_path / "cache", start=False
        )
        daemon = ServiceDaemon(service=service)
        daemon.start()
        try:
            client = ServiceClient(daemon.url, timeout=10.0)
            job = client.submit(**SUBMIT)      # paused: queued forever

            def _kill_http():
                time.sleep(0.3)
                daemon._httpd.shutdown()
                daemon._httpd.server_close()

            killer = threading.Thread(target=_kill_http)
            killer.start()
            started = time.time()
            with pytest.raises(ServiceConnectionError,
                               match="went away"):
                client.wait(job["id"], timeout=120.0)
            # Aborted as soon as the connection was refused — far
            # inside the 120 s budget a queued-job poll would get.
            assert time.time() - started < 30.0
            killer.join()
        finally:
            service.shutdown(drain=False, timeout=10.0)


class TestCLIVerbs:
    def test_submit_and_jobs_and_cancel(self, daemon, capsys):
        url = daemon.url
        code = main([
            "submit", "--url", url, "--case", "ecology2",
            "--scale", "0.02", "--method", "grass", "--fraction", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "sparsify_seconds" in out

        assert main(["jobs", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "job-000001" in out
        assert "dedup hits" in out

        assert main(["jobs", "--url", url, "--job", "job-000001"]) == 0
        job = json.loads(capsys.readouterr().out)
        assert job["status"] == "done"

    def test_submit_json_emits_run_record(self, daemon, capsys):
        code = main([
            "submit", "--url", daemon.url, "--case", "ecology2",
            "--scale", "0.02", "--method", "grass", "--fraction", "0.1",
            "--json",
        ])
        assert code == 0
        record = RunRecord.from_json(capsys.readouterr().out)
        assert record.method == "grass"
        assert record.graph["label"] == "ecology2"

    def test_submit_no_wait_then_cancel(self, paused_daemon, capsys):
        url = paused_daemon.url
        assert main([
            "submit", "--url", url, "--case", "ecology2",
            "--scale", "0.02", "--no-wait",
        ]) == 0
        out = capsys.readouterr().out
        assert "submitted job-000001" in out
        assert main(["jobs", "--url", url, "--cancel",
                     "job-000001"]) == 0
        assert "cancelled job-000001" in capsys.readouterr().out

    def test_inapplicable_option_fails_client_side(self, daemon,
                                                   capsys):
        code = main([
            "submit", "--url", daemon.url, "--case", "ecology2",
            "--method", "fegrass", "--rounds", "3",
        ])
        assert code == 2
        assert "does not accept" in capsys.readouterr().err
