"""The public API surface: everything advertised in __all__ exists.

Guards downstream users against accidental removals: every name in
``repro.__all__`` must be importable, documented, and the package's
version must be sane.
"""

import importlib

import pytest

import repro


def test_all_names_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ advertises {name}"


def test_version_is_semver():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


@pytest.mark.parametrize(
    "module",
    [
        "repro.graph",
        "repro.tree",
        "repro.linalg",
        "repro.core",
        "repro.api",
        "repro.api.registry",
        "repro.api.records",
        "repro.api.session",
        "repro.powergrid",
        "repro.partitioning",
        "repro.utils",
        "repro.cli",
        "repro.exceptions",
    ],
)
def test_submodules_importable_and_documented(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} needs a module docstring"


def test_public_functions_have_docstrings():
    import inspect

    missing = []
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if callable(obj) and not inspect.getdoc(obj):
            missing.append(name)
    assert not missing, f"public callables without docstrings: {missing}"


def test_exceptions_hierarchy():
    from repro import exceptions

    for name in (
        "GraphError",
        "NotATreeError",
        "FactorizationError",
        "ConvergenceError",
        "SimulationError",
    ):
        cls = getattr(exceptions, name)
        assert issubclass(cls, exceptions.ReproError)
        assert issubclass(cls, Exception)
