"""The linalg backend layer: registry, agreement and provenance.

Three contracts are locked down here:

* the **registry** — names, capability flags, and useful errors for
  unknown/unavailable backends;
* **scipy is the pre-backend code path** — factors and resistance
  sketches through ``backend="scipy"`` are bit-identical to calling
  the underlying :mod:`repro.linalg` routines directly, which is what
  the code did before the backend layer existed;
* **numpy agrees with scipy within numerical tolerance** — tight at
  the kernel level (solves, sketches), and at equal edge budget with
  comparable quality end to end (fp noise may flip borderline ranks,
  so masks are compared by overlap, not equality).
"""

import numpy as np
import pytest

from repro import evaluate_sparsifier, sparsify
from repro.backends import (
    BACKEND_CAPABILITY_FLAGS,
    DEFAULT_BACKEND,
    ScipyBackend,
    available_backends,
    backend_capabilities,
    check_backend,
    get_backend,
    list_backends,
)
from repro.core.er_sampling import approximate_effective_resistances
from repro.exceptions import BackendError
from repro.graph import regularization_shift, regularized_laplacian
from repro.graph.laplacian import incidence_matrix
from repro.linalg.cholesky import cholesky


class TestRegistry:
    def test_registered_names(self):
        assert list_backends() == ("cholmod", "numpy", "scipy")
        assert DEFAULT_BACKEND == "scipy"

    def test_scipy_and_numpy_always_available(self):
        assert {"numpy", "scipy"} <= set(available_backends())

    def test_get_backend_returns_cached_instance(self):
        assert get_backend("scipy") is get_backend("scipy")
        assert get_backend() is get_backend("scipy")

    def test_unknown_backend_raises_backend_error(self):
        with pytest.raises(BackendError, match="unknown linalg backend"):
            check_backend("blas9000")
        # BackendError doubles as ValueError for generic option handling.
        with pytest.raises(ValueError):
            get_backend("blas9000")

    def test_unknown_backend_rejected_at_sparsify(self, small_grid):
        with pytest.raises(BackendError, match="blas9000"):
            sparsify(small_grid, method="er_sampling", backend="blas9000")

    def test_unavailable_backend_raises_with_alternatives(self):
        if "cholmod" in available_backends():
            pytest.skip("scikit-sparse installed; cholmod is available")
        with pytest.raises(BackendError, match="not available"):
            get_backend("cholmod")

    def test_capability_flags_complete(self):
        capabilities = backend_capabilities()
        assert set(capabilities) == set(list_backends())
        for flags in capabilities.values():
            assert set(flags) == set(BACKEND_CAPABILITY_FLAGS)
            assert all(isinstance(v, bool) for v in flags.values())

    @pytest.mark.parametrize("method", ["proposed", "grass"])
    def test_cholesky_backend_refinement_rejected_off_scipy(
        self, small_grid, method
    ):
        """cholesky_backend selects among scipy's factorization paths;
        other backends must reject it, never silently ignore it."""
        with pytest.raises(BackendError, match="cannot honor"):
            sparsify(
                small_grid, method=method, backend="numpy",
                cholesky_backend="superlu",
            )
        # The default refinement stays accepted everywhere.
        sparsify(
            small_grid, method=method, backend="numpy",
            edge_fraction=0.05, rounds=1,
        )

    def test_scipy_compiled_numpy_persistent(self):
        capabilities = backend_capabilities()
        assert capabilities["scipy"]["compiled_factorization"]
        assert not capabilities["scipy"]["persistent_factors"]
        assert not capabilities["numpy"]["compiled_factorization"]
        assert capabilities["numpy"]["persistent_factors"]


@pytest.fixture(scope="module")
def regularized(small_grid_module):
    graph = small_grid_module
    shift = regularization_shift(graph, 1e-6)
    return graph, regularized_laplacian(graph, shift)


@pytest.fixture(scope="module")
def small_grid_module():
    from repro.graph import grid2d

    return grid2d(14, 14, weights="uniform", seed=21)


class TestScipyIsPrePRPath:
    """backend="scipy" must equal the direct repro.linalg calls bitwise."""

    def test_factor_bits_match_direct_cholesky(self, regularized):
        _, laplacian = regularized
        direct = cholesky(laplacian)
        via_backend = ScipyBackend().factorize(laplacian)
        np.testing.assert_array_equal(direct.perm, via_backend.perm)
        np.testing.assert_array_equal(
            direct.L.toarray(), via_backend.L.toarray()
        )

    def test_solve_bits_match_direct_cholesky(self, regularized):
        graph, laplacian = regularized
        b = np.random.default_rng(5).standard_normal(graph.n)
        direct = cholesky(laplacian).solve(b)
        via_backend = ScipyBackend().factorize(laplacian).solve(b)
        np.testing.assert_array_equal(direct, via_backend)

    def test_er_sketch_bits_match_pre_backend_loop(self, regularized):
        """The Spielman-Srivastava sketch through the backend replays
        the pre-backend inline loop exactly: same RNG draws, same
        solve per row, same resistances bit for bit."""
        graph, laplacian = regularized
        sketch_size = 32
        via_backend = approximate_effective_resistances(
            graph, sketch_size=sketch_size, seed=7,
            backend=get_backend("scipy"),
        )
        # The loop exactly as er_sampling.py had it before the layer.
        rng = np.random.default_rng(7)
        factor = cholesky(laplacian)
        incidence = incidence_matrix(graph, weighted=True)
        sketch = np.empty((sketch_size, graph.n))
        scale = 1.0 / np.sqrt(sketch_size)
        for i in range(sketch_size):
            q = rng.choice((-scale, scale), size=graph.edge_count)
            sketch[i] = factor.solve(incidence.T @ q)
        diffs = sketch[:, graph.u] - sketch[:, graph.v]
        pre_backend = np.sum(diffs * diffs, axis=0)
        np.testing.assert_array_equal(via_backend, pre_backend)

    def test_default_config_equals_explicit_scipy(self, small_grid_module):
        default = sparsify(
            small_grid_module, method="proposed",
            edge_fraction=0.10, rounds=2,
        )
        explicit = sparsify(
            small_grid_module, method="proposed",
            edge_fraction=0.10, rounds=2, backend="scipy",
        )
        np.testing.assert_array_equal(default.edge_mask, explicit.edge_mask)


class TestNumpyAgreesWithScipy:
    def test_factor_solves_agree(self, regularized):
        graph, laplacian = regularized
        b = np.random.default_rng(9).standard_normal(graph.n)
        x_scipy = get_backend("scipy").factorize(laplacian).solve(b)
        x_numpy = get_backend("numpy").factorize(laplacian).solve(b)
        np.testing.assert_allclose(x_numpy, x_scipy, rtol=0, atol=1e-8)

    def test_effective_resistances_agree(self, small_grid_module):
        r_scipy = approximate_effective_resistances(
            small_grid_module, seed=3, backend=get_backend("scipy")
        )
        r_numpy = approximate_effective_resistances(
            small_grid_module, seed=3, backend=get_backend("numpy")
        )
        np.testing.assert_allclose(r_numpy, r_scipy, rtol=1e-9)

    def test_sketch_consumes_identical_rng_stream(self, regularized):
        """Both backends must draw the same probes in the same order —
        the warm-cache RNG-state contract depends on it."""
        graph, laplacian = regularized
        states = []
        for name in ("scipy", "numpy"):
            backend = get_backend(name)
            rng = np.random.default_rng(13)
            backend.sketch_matvecs(
                backend.factorize(laplacian),
                incidence_matrix(graph, weighted=True), 8, rng,
            )
            states.append(rng.bit_generator.state)
        assert states[0] == states[1]

    @pytest.mark.parametrize("method", ["proposed", "grass"])
    def test_end_to_end_quality_parity(self, small_grid_module, method):
        """Same edge budget, nearly the same selection, and kappa in
        the same ballpark — fp noise may flip borderline ranks, so the
        masks are compared by overlap rather than equality."""
        graph = small_grid_module
        options = {"edge_fraction": 0.10, "rounds": 3}
        result = {
            name: sparsify(graph, method=method, backend=name, **options)
            for name in ("scipy", "numpy")
        }
        assert result["scipy"].edge_count == result["numpy"].edge_count
        overlap = (
            result["scipy"].edge_mask & result["numpy"].edge_mask
        ).sum() / result["scipy"].edge_mask.sum()
        assert overlap >= 0.90
        kappa = {
            name: evaluate_sparsifier(graph, r.sparsifier, seed=2).kappa
            for name, r in result.items()
        }
        ratio = kappa["scipy"] / kappa["numpy"]
        assert 0.75 <= ratio <= 1.33, kappa


class TestProvenance:
    def test_run_record_environment_names_backend(self, small_grid_module):
        from repro.api import SparsifierSession

        session = SparsifierSession(small_grid_module, label="grid")
        record = session.run(
            "er_sampling", evaluate=False, backend="numpy",
        )
        assert record.environment["backend"] == "numpy"
        flags = record.environment["backend_capabilities"]
        assert flags["persistent_factors"] is True

    def test_methods_registry_surfaces_backend_option(self):
        from repro.api.registry import get_method, list_methods

        for name in list_methods():
            assert "backend" in get_method(name).options()
