"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_cases_lists_everything(capsys):
    assert main(["cases"]) == 0
    out = capsys.readouterr().out
    for name in ("ecology2", "NLR", "ibmpg3t", "thupg2t"):
        assert name in out


def test_sparsify_named_case(capsys):
    code = main(
        ["sparsify", "--case", "ecology2", "--scale", "0.04",
         "--rounds", "2", "--fraction", "0.05"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "kappa" in out
    assert "PCG iterations" in out


def test_sparsify_grass_baseline(capsys):
    code = main(
        ["sparsify", "--case", "tmt_sym", "--scale", "0.04",
         "--method", "grass", "--rounds", "2"]
    )
    assert code == 0
    assert "grass" in capsys.readouterr().out


@pytest.mark.parametrize("method", ["fegrass", "er_sampling"])
def test_sparsify_single_pass_baselines(capsys, method):
    code = main(
        ["sparsify", "--case", "tmt_sym", "--scale", "0.04",
         "--method", method]
    )
    assert code == 0
    assert method in capsys.readouterr().out


@pytest.mark.parametrize(
    "method,flag,value",
    [
        ("fegrass", "--rounds", "2"),
        ("er_sampling", "--rounds", "2"),
        ("grass", "--workers", "2"),
        ("fegrass", "--chunk-size", "64"),
        ("er_sampling", "--beta", "3"),
    ],
)
def test_inapplicable_option_is_hard_error(capsys, method, flag, value):
    """Regression: flags the method cannot honor used to be silently
    dropped; the registry-generated CLI must reject them."""
    code = main(
        ["sparsify", "--case", "tmt_sym", "--scale", "0.04",
         "--method", method, flag, value]
    )
    assert code == 2
    err = capsys.readouterr().err
    option = flag.lstrip("-").replace("-", "_")
    assert method in err and option in err
    assert "supported by" in err  # points at the methods that do accept it


def test_sparsify_mtx_file(tmp_path, capsys):
    from repro.graph import grid2d, write_graph_mtx

    path = tmp_path / "g.mtx"
    write_graph_mtx(path, grid2d(10, 10, seed=0))
    code = main(["sparsify", "--mtx", str(path), "--rounds", "1"])
    assert code == 0
    assert "100 nodes" in capsys.readouterr().out


def test_transient_command(capsys):
    code = main(
        ["transient", "--case", "ibmpg3t", "--scale", "0.08",
         "--t-end", "1e-9"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "direct" in out and "pcg" in out
    assert "waveform deviation" in out


def test_partition_command(capsys):
    code = main(["partition", "--case", "ecology2", "--scale", "0.06"])
    assert code == 0
    out = capsys.readouterr().out
    assert "RelErr" in out


def test_requires_source_for_sparsify():
    with pytest.raises(SystemExit):
        main(["sparsify"])


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_transient_inapplicable_option_fails_fast(capsys):
    """The hard error must fire before the direct simulation runs."""
    import time

    start = time.perf_counter()
    code = main(
        ["transient", "--case", "ibmpg3t", "--scale", "0.08",
         "--method", "fegrass", "--rounds", "2"]
    )
    elapsed = time.perf_counter() - start
    assert code == 2
    assert "rounds" in capsys.readouterr().err
    assert elapsed < 2.0  # no simulation happened


def test_methods_lists_registry(capsys):
    assert main(["methods"]) == 0
    out = capsys.readouterr().out
    for name in ("proposed", "grass", "fegrass", "er_sampling"):
        assert name in out
    assert "--fraction" in out


def test_sparsify_json_roundtrips(capsys):
    from repro.api import RunRecord

    code = main(
        ["sparsify", "--case", "ecology2", "--scale", "0.04",
         "--rounds", "2", "--json"]
    )
    assert code == 0
    record = RunRecord.from_json(capsys.readouterr().out)
    assert record.method == "proposed"
    assert record.config["rounds"] == 2
    assert record.quality["kappa"] > 1.0
    assert record.timings["sparsify_seconds"] > 0
    assert RunRecord.from_json(record.to_json()) == record


def test_sweep_command(capsys, tmp_path):
    out_path = tmp_path / "sweep.json"
    code = main(
        ["sweep", "--case", "ecology2", "--scale", "0.04",
         "--methods", "proposed,fegrass", "--fractions", "0.02,0.05",
         "--rounds", "2", "--output", str(out_path)]
    )
    # --rounds applies to proposed only -> hard error covering fegrass.
    assert code == 2

    code = main(
        ["sweep", "--case", "ecology2", "--scale", "0.04",
         "--methods", "proposed,fegrass", "--fractions", "0.02,0.05",
         "--output", str(out_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "session artifacts" in out
    import json

    payload = json.loads(out_path.read_text())
    assert len(payload) == 4
    assert {entry["method"] for entry in payload} == {"proposed", "fegrass"}


def test_sweep_rejects_no_cache_with_cache_dir(capsys, tmp_path):
    code = main(
        ["sweep", "--case", "ecology2", "--scale", "0.04",
         "--no-cache", "--cache-dir", str(tmp_path)]
    )
    assert code == 2
    assert "contradict" in capsys.readouterr().err


def test_sweep_warm_run_reports_setup_skipped(capsys, tmp_path):
    argv = ["sweep", "--case", "ecology2", "--scale", "0.04",
            "--methods", "er_sampling", "--fractions", "0.05",
            "--cache-dir", str(tmp_path / "cache")]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "0 loaded" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "warm run: setup skipped" in warm
    # Outcome columns identical; only wall-clock (Ts_s, the last
    # column) and the disk-stats lines may differ.
    strip = lambda text: [line.rsplit("|", 1)[0]
                          for line in text.splitlines() if "|" in line]
    assert strip(cold) == strip(warm)


def test_sparsify_backend_flag_in_record(capsys):
    code = main(
        ["sparsify", "--case", "ecology2", "--scale", "0.04",
         "--method", "er_sampling", "--backend", "numpy", "--json"]
    )
    assert code == 0
    import json

    record = json.loads(capsys.readouterr().out)
    assert record["config"]["backend"] == "numpy"
    assert record["environment"]["backend"] == "numpy"


def test_sparsify_shards_flag(capsys):
    code = main(
        ["sparsify", "--case", "ecology2", "--scale", "0.06",
         "--rounds", "2", "--shards", "4"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "shards: 4" in out
    assert "boundary_policy=keep" in out
    assert "per-shard sparsify seconds" in out


def test_sparsify_shards_json_record(capsys):
    from repro.api import RunRecord

    code = main(
        ["sparsify", "--case", "ecology2", "--scale", "0.06",
         "--rounds", "2", "--shards", "2",
         "--boundary-policy", "sample", "--json"]
    )
    assert code == 0
    record = RunRecord.from_json(capsys.readouterr().out)
    assert record.config["shards"] == 2
    assert record.config["boundary_policy"] == "sample"
    assert record.sharding["shards"] == 2
    assert len(record.sharding["per_shard"]) == 2
    assert record.sharding["cut"]["kept_edges"] <= \
        record.sharding["cut"]["edges"]
    assert RunRecord.from_json(record.to_json()) == record


def test_sparsify_bad_boundary_policy_is_usage_error(capsys):
    code = main(
        ["sparsify", "--case", "ecology2", "--scale", "0.04",
         "--shards", "2", "--boundary-policy", "teleport"]
    )
    assert code == 2
    assert "boundary_policy" in capsys.readouterr().err


def test_sparsify_unknown_backend_is_usage_error(capsys):
    code = main(
        ["sparsify", "--case", "ecology2", "--scale", "0.04",
         "--backend", "blas9000"]
    )
    assert code == 2
    assert "unknown linalg backend" in capsys.readouterr().err


def test_methods_lists_backends_and_markdown(capsys):
    assert main(["methods"]) == 0
    out = capsys.readouterr().out
    assert "scipy" in out and "numpy" in out and "cholmod" in out
    assert main(["methods", "--markdown"]) == 0
    markdown = capsys.readouterr().out
    assert markdown.startswith("<!-- GENERATED")
    assert "## Linear-algebra backends" in markdown


def test_partition_method_flag(capsys):
    code = main(
        ["partition", "--case", "ecology2", "--scale", "0.06",
         "--method", "fegrass", "--json"]
    )
    assert code == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["sparsifier"]["method"] == "fegrass"
    assert payload["relative_error"] < 0.5


def test_transient_json(capsys):
    code = main(
        ["transient", "--case", "ibmpg3t", "--scale", "0.08",
         "--t-end", "1e-9", "--json"]
    )
    assert code == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["direct"]["steps"] > 0
    assert payload["pcg"]["steps"] > 0
    assert payload["deviation_volts"] < 16e-3
    assert payload["sparsifier"]["method"] == "proposed"


# ----------------------------------------------------------------------
# evolving-graph service verbs (repro graphs / repro patch / repro jobs)
# ----------------------------------------------------------------------
def test_patch_requires_a_batch(capsys):
    assert main(["patch", "--graph", "graph-000001"]) == 2
    err = capsys.readouterr().err
    assert "at least one --insert or --delete" in err


def test_patch_rejects_malformed_edges(capsys):
    assert main(["patch", "--graph", "g", "--insert", "0,1"]) == 2
    assert "--insert takes U,V,W" in capsys.readouterr().err
    assert main(["patch", "--graph", "g", "--insert", "a,b,c"]) == 2
    assert "integer endpoints" in capsys.readouterr().err
    assert main(["patch", "--graph", "g", "--delete", "0,1,2"]) == 2
    assert "--delete takes U,V" in capsys.readouterr().err


def test_jobs_status_flag_validates_choices():
    with pytest.raises(SystemExit):
        main(["jobs", "--status", "bogus"])


def test_graphs_lifecycle_over_daemon(tmp_path, capsys):
    from repro.service import ServiceDaemon

    with ServiceDaemon(workers=1,
                       cache_dir=tmp_path / "cache") as daemon:
        url = daemon.url
        assert main(["graphs", "--url", url, "--create",
                     "--case", "ecology2", "--scale", "0.02",
                     "--fraction", "0.15"]) == 0
        assert "created graph-000001" in capsys.readouterr().out
        assert main(["patch", "--url", url,
                     "--graph", "graph-000001",
                     "--insert", "0,37,1.0", "--delete", "0,1"]) == 0
        out = capsys.readouterr().out
        assert "graph-000001 batch 0" in out
        assert "+1/-1 edges" in out
        assert main(["graphs", "--url", url]) == 0
        assert "graph-000001" in capsys.readouterr().out
        assert main(["graphs", "--url", url,
                     "--show", "graph-000001", "--json"]) == 0
        import json as _json

        export = _json.loads(capsys.readouterr().out)
        assert set(export) == {"id", "summary", "record", "delta"}
        assert main(["graphs", "--url", url,
                     "--delete", "graph-000001"]) == 0
        assert "deleted graph-000001" in capsys.readouterr().out
        # Error surface: patching the deleted session is a 404.
        assert main(["patch", "--url", url,
                     "--graph", "graph-000001",
                     "--insert", "0,37,1.0"]) == 2
        assert "404" in capsys.readouterr().err


def test_jobs_filters_over_daemon(tmp_path, capsys):
    from repro.service import ServiceDaemon

    with ServiceDaemon(workers=1,
                       cache_dir=tmp_path / "cache") as daemon:
        url = daemon.url
        assert main(["submit", "--url", url, "--case", "ecology2",
                     "--scale", "0.02", "--method", "grass",
                     "--fraction", "0.1", "--wait"]) == 0
        capsys.readouterr()
        assert main(["jobs", "--url", url, "--status", "done",
                     "--limit", "5"]) == 0
        assert "job-000001" in capsys.readouterr().out
        assert main(["jobs", "--url", url,
                     "--status", "queued"]) == 0
        assert "job-000001" not in capsys.readouterr().out
