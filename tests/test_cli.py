"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_cases_lists_everything(capsys):
    assert main(["cases"]) == 0
    out = capsys.readouterr().out
    for name in ("ecology2", "NLR", "ibmpg3t", "thupg2t"):
        assert name in out


def test_sparsify_named_case(capsys):
    code = main(
        ["sparsify", "--case", "ecology2", "--scale", "0.04",
         "--rounds", "2", "--fraction", "0.05"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "kappa" in out
    assert "PCG iterations" in out


@pytest.mark.parametrize("method", ["grass", "fegrass"])
def test_sparsify_baselines(capsys, method):
    code = main(
        ["sparsify", "--case", "tmt_sym", "--scale", "0.04",
         "--method", method, "--rounds", "2"]
    )
    assert code == 0
    assert method in capsys.readouterr().out


def test_sparsify_mtx_file(tmp_path, capsys):
    from repro.graph import grid2d, write_graph_mtx

    path = tmp_path / "g.mtx"
    write_graph_mtx(path, grid2d(10, 10, seed=0))
    code = main(["sparsify", "--mtx", str(path), "--rounds", "1"])
    assert code == 0
    assert "100 nodes" in capsys.readouterr().out


def test_transient_command(capsys):
    code = main(
        ["transient", "--case", "ibmpg3t", "--scale", "0.08",
         "--t-end", "1e-9"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "direct" in out and "pcg" in out
    assert "waveform deviation" in out


def test_partition_command(capsys):
    code = main(["partition", "--case", "ecology2", "--scale", "0.06"])
    assert code == 0
    out = capsys.readouterr().out
    assert "RelErr" in out


def test_requires_source_for_sparsify():
    with pytest.raises(SystemExit):
        main(["sparsify"])


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
