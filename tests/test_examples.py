"""Example-script contracts that ``make docs-check`` relies on.

The docs checker executes every ``examples/*.py`` from the repository
root; nothing there protects against an example scattering artifacts
relative to whatever directory a *reader* launches it from.  These
tests pin the fixed contract: artifacts resolve next to the example
file, never into the caller's working directory.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLE = REPO_ROOT / "examples" / "power_grid_transient.py"


def _run_example(cwd, *args):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return subprocess.run(
        [sys.executable, str(EXAMPLE), "--scale", "0.1",
         "--t-end", "5e-10", *args],
        cwd=cwd, env=env, text=True, capture_output=True, timeout=300,
    )


def test_waveform_csv_lands_next_to_the_example(tmp_path):
    # Launch from a foreign cwd: the artifact must still land in
    # examples/, not in the caller's directory (the old behavior).
    default_out = EXAMPLE.parent / "pg_waveforms.csv"
    if default_out.exists():
        default_out.unlink()  # regenerated artifact, gitignored
    proc = _run_example(tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert default_out.exists()
    assert not (tmp_path / "pg_waveforms.csv").exists()
    header = default_out.read_text().splitlines()[0]
    assert header.split(",") == [
        "time_s", "vdd_direct", "vdd_iterative", "gnd_direct",
        "gnd_iterative",
    ]


def test_explicit_out_path_is_honored(tmp_path):
    target = tmp_path / "wave.csv"
    proc = _run_example(tmp_path, "--out", str(target))
    assert proc.returncode == 0, proc.stderr
    assert target.exists()
