"""End-to-end integration tests across the whole pipeline.

These mirror the benchmark harness at a small scale: every paper
experiment's code path runs here in a couple of minutes, so a plain
``pytest tests/`` exercises the table/figure machinery too.
"""

import numpy as np
import pytest

from repro import (
    cholesky,
    evaluate_sparsifier,
    fegrass_sparsify,
    grass_sparsify,
    make_case,
    regularization_shift,
    regularized_laplacian,
    trace_reduction_sparsify,
)
from repro.graph import CASE_REGISTRY
from repro.partitioning import (
    fiedler_vector,
    partition_relative_error,
    spectral_bipartition,
)
from repro.powergrid import (
    build_sparsifier_preconditioner,
    make_pg_case,
    simulate_transient_direct,
    simulate_transient_pcg,
)
from repro.powergrid.transient import max_probe_difference


@pytest.mark.parametrize("name", ["ecology2", "NACA0015", "G3_circuit"])
def test_table1_pipeline_small(name):
    """Table 1's full measurement pipeline on three case families."""
    graph, _ = make_case(name, scale=0.08, seed=0)
    proposed = trace_reduction_sparsify(
        graph, edge_fraction=0.10, rounds=3, seed=1
    )
    grass = grass_sparsify(graph, edge_fraction=0.10, rounds=3, seed=1)
    q_prop = evaluate_sparsifier(graph, proposed.sparsifier, rtol=1e-3)
    q_grass = evaluate_sparsifier(graph, grass.sparsifier, rtol=1e-3)
    assert q_prop.sparsifier_edges == q_grass.sparsifier_edges
    assert q_prop.pcg_converged and q_grass.pcg_converged
    assert q_prop.kappa >= 1.0 and q_grass.kappa >= 1.0


def test_table2_pipeline_small():
    """Table 2's three solvers agree and report sane statistics."""
    netlist, _ = make_pg_case("ibmpg3t", scale=0.12, seed=1)
    probe = netlist.loads[0].node
    direct = simulate_transient_direct(
        netlist, t_end=2e-9, step=10e-12, probes=[probe]
    )
    rows = {}
    for method in ("grass", "proposed"):
        factor, _, _ = build_sparsifier_preconditioner(
            netlist, method=method, edge_fraction=0.10, rounds=2, seed=1
        )
        rows[method] = simulate_transient_pcg(
            netlist, factor, t_end=2e-9, probes=[probe]
        )
    for method, run in rows.items():
        assert run.steps < direct.steps
        assert run.memory_bytes <= direct.memory_bytes
        assert max_probe_difference(direct, run, probe) < 16e-3
    # Proposed preconditioner should not need more iterations than GRASS.
    assert rows["proposed"].avg_iterations <= rows["grass"].avg_iterations * 1.3


def test_table3_pipeline_small():
    """Table 3's direct-vs-iterative Fiedler comparison."""
    graph, _ = make_case("tmt_sym", scale=0.15, seed=2)
    direct = fiedler_vector(graph, method="direct", steps=5, seed=3)
    result = trace_reduction_sparsify(graph, edge_fraction=0.10, rounds=2)
    shift = regularization_shift(graph)
    factor = cholesky(regularized_laplacian(result.sparsifier, shift))
    iterative = fiedler_vector(
        graph, method="pcg", preconditioner=factor, steps=5, rtol=1e-7, seed=3
    )
    labels_d = spectral_bipartition(direct.vector)
    labels_i = spectral_bipartition(iterative.vector)
    assert partition_relative_error(labels_d, labels_i) < 0.05
    assert iterative.memory_bytes <= direct.memory_bytes


def test_all_three_sparsifiers_run_on_all_families():
    """Every sparsifier handles every registered topology family."""
    for name in ("ecology2", "thermal2", "G3_circuit"):
        graph, _ = make_case(name, scale=0.04, seed=3)
        for sparsify in (
            lambda g: trace_reduction_sparsify(g, edge_fraction=0.05, rounds=2),
            lambda g: grass_sparsify(g, edge_fraction=0.05, rounds=2),
            lambda g: fegrass_sparsify(g, edge_fraction=0.05),
        ):
            result = sparsify(graph)
            assert result.edge_count >= graph.n - 1


def test_registry_sizes_are_ranked_like_paper():
    """Bigger paper cases map to bigger reproduction cases."""
    small = CASE_REGISTRY["parabolic"]
    big = CASE_REGISTRY["NLR"]
    assert small.paper_nodes < big.paper_nodes
    assert small.base_nodes < big.base_nodes


def test_real_mtx_file_roundtrip(tmp_path):
    """A user can export a case and re-load it as a real .mtx matrix."""
    from repro import read_graph_mtx, write_graph_mtx

    graph, _ = make_case("ecology2", scale=0.03, seed=4)
    path = tmp_path / "case.mtx"
    write_graph_mtx(path, graph)
    loaded, _ = read_graph_mtx(path)
    result = trace_reduction_sparsify(loaded, edge_fraction=0.05, rounds=2)
    assert result.edge_count > 0
