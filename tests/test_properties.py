"""Cross-module property-based tests (hypothesis).

These encode the paper's mathematical invariants on randomly generated
graphs — the properties that must hold for *any* input, not just the
fixtures: Laplacian PSD-ness, Rayleigh-quotient domination of subgraphs,
trace/kappa ordering, SPAI nonnegativity, tree-resistance metric
axioms, and PCG's Galerkin property.
"""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import trace_ratio_exact
from repro.graph import (
    Graph,
    grid2d,
    laplacian,
    regularization_shift,
    regularized_laplacian,
)
from repro.linalg import cholesky, pcg, sparse_approximate_inverse
from repro.tree import RootedForest, batch_tree_resistances, mewst


def _random_connected_graph(seed, max_nodes=24):
    """Random spanning tree + random extra edges (always connected)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, max_nodes))
    edges = {}
    for node in range(1, n):
        parent = int(rng.integers(0, node))
        edges[(parent, node)] = float(rng.uniform(0.2, 5.0))
    extras = rng.integers(0, 2 * n)
    for _ in range(int(extras)):
        a, b = rng.integers(0, n, size=2)
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        if key not in edges:
            edges[key] = float(rng.uniform(0.2, 5.0))
    triples = [(a, b, w) for (a, b), w in edges.items()]
    return Graph.from_edges(n, triples)


@given(seed=st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_laplacian_is_psd_with_zero_row_sums(seed):
    g = _random_connected_graph(seed)
    L = laplacian(g).toarray()
    np.testing.assert_allclose(L.sum(axis=1), 0, atol=1e-10)
    eigenvalues = np.linalg.eigvalsh(L)
    assert eigenvalues.min() > -1e-9


@given(seed=st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_subgraph_rayleigh_domination(seed):
    """x^T L_S x <= x^T L_G x for any subgraph S and any x."""
    g = _random_connected_graph(seed)
    rng = np.random.default_rng(seed + 1)
    mask = rng.random(g.edge_count) < 0.6
    sub = g.subgraph(mask)
    L_G = laplacian(g).toarray()
    L_S = laplacian(sub).toarray()
    for _ in range(5):
        x = rng.standard_normal(g.n)
        assert x @ L_S @ x <= x @ L_G @ x + 1e-9


@given(seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_generalized_spectrum_bounded_below_by_one(seed):
    """With the shared shift, all generalized eigenvalues are >= 1."""
    g = _random_connected_graph(seed)
    tree_ids = mewst(g)
    shift = regularization_shift(g, 1e-4)
    L_G = regularized_laplacian(g, shift).toarray()
    L_T = regularized_laplacian(g.subgraph(tree_ids), shift).toarray()
    eigenvalues = sla.eigh(L_G, L_T, eigvals_only=True)
    assert eigenvalues.min() >= 1.0 - 1e-7
    # Eq. (5): kappa = lambda_max <= trace.
    assert eigenvalues.max() <= np.trace(np.linalg.solve(L_T, L_G)) + 1e-7


@given(seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_tree_resistance_is_a_metric(seed):
    g = _random_connected_graph(seed)
    forest = RootedForest(g, mewst(g))
    rng = np.random.default_rng(seed + 2)
    nodes = rng.integers(0, g.n, size=(10, 3))
    for a, b, c in nodes:
        r_ab, _ = batch_tree_resistances(forest, [a], [b])
        r_bc, _ = batch_tree_resistances(forest, [b], [c])
        r_ac, _ = batch_tree_resistances(forest, [a], [c])
        # Symmetry.
        r_ba, _ = batch_tree_resistances(forest, [b], [a])
        assert r_ab[0] == pytest.approx(r_ba[0])
        # Identity.
        if a == b:
            assert r_ab[0] == pytest.approx(0.0, abs=1e-12)
        # Triangle inequality (exact equality when paths nest).
        assert r_ac[0] <= r_ab[0] + r_bc[0] + 1e-9


@given(seed=st.integers(0, 500), delta=st.sampled_from([0.0, 0.1, 0.3]))
@settings(max_examples=20, deadline=None)
def test_spai_invariants_on_random_graphs(seed, delta):
    g = _random_connected_graph(seed)
    shift = regularization_shift(g, 1e-3)
    factor = cholesky(regularized_laplacian(g, shift))
    Z = sparse_approximate_inverse(factor.L, delta=delta)
    coo = Z.tocoo()
    assert (coo.row >= coo.col).all()          # lower triangular
    assert (coo.data >= -1e-13).all()          # Proposition 1
    assert np.diff(Z.indptr).min() >= 1        # no empty columns


@given(seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_pcg_monotone_residual_with_exact_preconditioner(seed):
    g = _random_connected_graph(seed)
    shift = regularization_shift(g, 1e-3)
    A = regularized_laplacian(g, shift)
    factor = cholesky(A)
    rng = np.random.default_rng(seed + 3)
    b = rng.standard_normal(g.n)
    result = pcg(A, b, M_solve=factor.solve, rtol=1e-10, record_history=True)
    assert result.converged
    assert result.iterations <= 3


@given(seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_trace_of_self_is_n(seed):
    g = _random_connected_graph(seed)
    shift = regularization_shift(g, 1e-5)
    L = regularized_laplacian(g, shift)
    assert trace_ratio_exact(L, L) == pytest.approx(g.n, rel=1e-8)


@given(seed=st.integers(0, 300))
@settings(max_examples=10, deadline=None)
def test_sparsifier_always_valid_on_random_graphs(seed):
    """Algorithm 2 produces a connected, budget-respecting subgraph."""
    from repro.core import trace_reduction_sparsify
    from repro.graph import connected_components

    g = _random_connected_graph(seed, max_nodes=40)
    result = trace_reduction_sparsify(g, edge_fraction=0.15, rounds=2, seed=0)
    count, _ = connected_components(result.sparsifier)
    assert count == 1
    assert result.edge_count <= g.edge_count
    assert result.edge_mask[result.tree_edge_ids].all()
