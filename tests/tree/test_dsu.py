"""Tests for disjoint-set union."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree import DisjointSetUnion


def test_initially_disjoint():
    dsu = DisjointSetUnion(4)
    assert not dsu.connected(0, 1)
    assert dsu.component_count() == 4


def test_union_connects():
    dsu = DisjointSetUnion(4)
    assert dsu.union(0, 1)
    assert dsu.connected(0, 1)
    assert dsu.component_count() == 3


def test_union_returns_false_when_merged():
    dsu = DisjointSetUnion(3)
    dsu.union(0, 1)
    assert not dsu.union(1, 0)


def test_transitivity():
    dsu = DisjointSetUnion(5)
    dsu.union(0, 1)
    dsu.union(1, 2)
    dsu.union(3, 4)
    assert dsu.connected(0, 2)
    assert not dsu.connected(2, 3)
    assert dsu.component_count() == 2


def test_find_is_canonical():
    dsu = DisjointSetUnion(6)
    dsu.union(0, 1)
    dsu.union(2, 3)
    dsu.union(1, 3)
    reps = {dsu.find(i) for i in range(4)}
    assert len(reps) == 1


@given(
    n=st.integers(min_value=2, max_value=30),
    ops=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
)
@settings(max_examples=40, deadline=None)
def test_matches_naive_partition(n, ops):
    """DSU agrees with a brute-force partition refinement."""
    dsu = DisjointSetUnion(n)
    naive = [{i} for i in range(n)]
    membership = list(range(n))
    for a, b in ops:
        a, b = a % n, b % n
        dsu.union(a, b)
        ra, rb = membership[a], membership[b]
        if ra != rb:
            naive[ra] |= naive[rb]
            for x in naive[rb]:
                membership[x] = ra
            naive[rb] = set()
    for i in range(n):
        for j in range(n):
            assert dsu.connected(i, j) == (membership[i] == membership[j])
