"""Tests for Tarjan's offline LCA against the naive climb."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotATreeError
from repro.graph import Graph, grid2d, triangular_mesh
from repro.tree import (
    RootedForest,
    batch_tree_resistances,
    mewst,
    tarjan_offline_lca,
)


def _random_queries(n, count, rng):
    qu = rng.integers(0, n, size=count)
    qv = rng.integers(0, n, size=count)
    return qu, qv


def test_empty_query_batch(small_grid_tree):
    out = tarjan_offline_lca(small_grid_tree, [], [])
    assert len(out) == 0


def test_matches_naive_on_grid(small_grid, small_grid_tree):
    rng = np.random.default_rng(0)
    qu, qv = _random_queries(small_grid.n, 200, rng)
    lcas = tarjan_offline_lca(small_grid_tree, qu, qv)
    for k in range(len(qu)):
        assert lcas[k] == small_grid_tree.lca_naive(int(qu[k]), int(qv[k]))


def test_matches_naive_on_mesh():
    g = triangular_mesh(150, seed=3)
    forest = RootedForest(g, mewst(g))
    rng = np.random.default_rng(1)
    qu, qv = _random_queries(g.n, 150, rng)
    lcas = tarjan_offline_lca(forest, qu, qv)
    for k in range(len(qu)):
        assert lcas[k] == forest.lca_naive(int(qu[k]), int(qv[k]))


def test_self_queries(small_grid_tree):
    nodes = np.array([0, 5, 17])
    lcas = tarjan_offline_lca(small_grid_tree, nodes, nodes)
    np.testing.assert_array_equal(lcas, nodes)


def test_rejects_cross_component(forest_graph):
    forest = RootedForest(forest_graph, mewst(forest_graph))
    with pytest.raises(NotATreeError):
        tarjan_offline_lca(forest, [0], [5])


def test_rejects_shape_mismatch(small_grid_tree):
    with pytest.raises(ValueError):
        tarjan_offline_lca(small_grid_tree, [0, 1], [2])


def test_forest_queries_within_components(forest_graph):
    forest = RootedForest(forest_graph, mewst(forest_graph))
    lcas = tarjan_offline_lca(forest, [0, 3], [2, 5])
    for k, (p, q) in enumerate([(0, 2), (3, 5)]):
        assert lcas[k] == forest.lca_naive(p, q)


def test_batch_resistances_match_single(small_grid, small_grid_tree):
    rng = np.random.default_rng(2)
    qu, qv = _random_queries(small_grid.n, 50, rng)
    resistances, lcas = batch_tree_resistances(small_grid_tree, qu, qv)
    for k in range(len(qu)):
        expected = small_grid_tree.tree_resistance(int(qu[k]), int(qv[k]))
        assert resistances[k] == pytest.approx(expected)


def test_batch_resistances_vs_laplacian_pinv(path_graph):
    """Tree resistance == effective resistance from the pseudoinverse."""
    forest = RootedForest(path_graph, np.arange(4))
    from repro.graph import laplacian

    L = laplacian(path_graph).toarray()
    pinv = np.linalg.pinv(L)
    pairs = [(0, 4), (1, 3), (0, 2), (2, 4)]
    qu = np.array([p for p, _ in pairs])
    qv = np.array([q for _, q in pairs])
    resistances, _ = batch_tree_resistances(forest, qu, qv)
    for k, (p, q) in enumerate(pairs):
        e = np.zeros(5)
        e[p], e[q] = 1, -1
        assert resistances[k] == pytest.approx(e @ pinv @ e, rel=1e-9)


@given(seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_random_trees_match_naive(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 40))
    # Random tree: each node > 0 picks a parent among smaller ids.
    parents = [int(rng.integers(0, k)) for k in range(1, n)]
    edges = [(p, k + 1, float(rng.uniform(0.5, 2.0))) for k, p in enumerate(parents)]
    g = Graph.from_edges(n, edges)
    forest = RootedForest(g, np.arange(n - 1))
    qu = rng.integers(0, n, size=30)
    qv = rng.integers(0, n, size=30)
    lcas = tarjan_offline_lca(forest, qu, qv)
    for k in range(30):
        assert lcas[k] == forest.lca_naive(int(qu[k]), int(qv[k]))
