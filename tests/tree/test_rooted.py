"""Tests for the RootedForest structure."""

import numpy as np
import pytest

from repro.exceptions import NotATreeError
from repro.graph import Graph
from repro.tree import RootedForest, mewst


@pytest.fixture(scope="module")
def path_forest(request):
    g = Graph.from_edges(5, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0), (3, 4, 0.5)])
    return g, RootedForest(g, np.arange(4))


def test_rejects_cycles(triangle_graph):
    with pytest.raises(NotATreeError):
        RootedForest(triangle_graph, np.array([0, 1, 2]))


def test_rejects_non_spanning(small_grid):
    with pytest.raises(NotATreeError):
        RootedForest(small_grid, np.array([0, 1]))


def test_path_structure(path_forest):
    g, forest = path_forest
    assert forest.roots.tolist() == [0]
    assert forest.parent[0] == -1
    assert forest.depth.tolist() == [0, 1, 2, 3, 4]
    # Resistive distance accumulates 1/w.
    np.testing.assert_allclose(
        forest.rdist, [0.0, 1.0, 1.5, 1.75, 3.75]
    )


def test_tree_resistance_on_path(path_forest):
    g, forest = path_forest
    assert forest.tree_resistance(0, 4) == pytest.approx(3.75)
    assert forest.tree_resistance(1, 3) == pytest.approx(0.75)
    assert forest.tree_resistance(2, 2) == pytest.approx(0.0)


def test_lca_naive(path_forest):
    g, forest = path_forest
    assert forest.lca_naive(0, 4) == 0
    assert forest.lca_naive(3, 4) == 3


def test_lca_on_star():
    g = Graph.from_edges(4, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)])
    forest = RootedForest(g, np.arange(3))
    assert forest.lca_naive(1, 2) == 0
    assert forest.lca_naive(1, 1) == 1


def test_path_edges_and_nodes(path_forest):
    g, forest = path_forest
    edges = forest.path_edges(1, 4)
    assert edges.tolist() == [1, 2, 3]
    nodes = forest.path_nodes(1, 4)
    assert nodes.tolist() == [1, 2, 3, 4]


def test_forest_components(forest_graph):
    ids = mewst(forest_graph)
    forest = RootedForest(forest_graph, ids)
    assert forest.component_count == 2
    assert len(forest.roots) == 2
    with pytest.raises(NotATreeError):
        forest.lca_naive(0, 5)  # different components


def test_tree_edge_mask(small_grid):
    ids = mewst(small_grid)
    forest = RootedForest(small_grid, ids)
    mask = forest.tree_edge_mask()
    assert mask.sum() == len(ids)
    assert mask[ids].all()


def test_euler_intervals_subtree_property(small_grid_tree):
    forest = small_grid_tree
    tin, tout = forest.euler_intervals()
    n = forest.n
    # Every node's interval is inside its parent's.
    for node in range(n):
        parent = forest.parent[node]
        if parent >= 0:
            assert tin[parent] <= tin[node] < tout[node] <= tout[parent]
    # Intervals are a permutation of 0..n-1 on tin.
    assert sorted(tin.tolist()) == list(range(n))


def test_edge_on_path_matches_path_edges(small_grid_tree, small_grid):
    forest = small_grid_tree
    rng = np.random.default_rng(5)
    for _ in range(25):
        p, q = rng.integers(0, small_grid.n, size=2)
        path = set(forest.path_edges(int(p), int(q)).tolist())
        for node in range(small_grid.n):
            edge = forest.parent_edge[node]
            if edge < 0:
                continue
            on_path = forest.edge_on_path(node, int(p), int(q))
            assert on_path == (edge in path)
