"""Tests for spanning-forest extraction (Kruskal / MEWST / BFS)."""

import numpy as np
import pytest

from repro.graph import Graph, connected_components
from repro.tree import (
    bfs_spanning_forest,
    maximum_spanning_forest,
    mewst,
)
from repro.tree.spanning import effective_weights


def _is_spanning_forest(graph, edge_ids):
    """Check acyclicity + spanning by component counting."""
    count, _ = connected_components(graph)
    sub = graph.subgraph(np.asarray(edge_ids))
    sub_count, _ = connected_components(sub)
    return len(edge_ids) == graph.n - count and sub_count == count


@pytest.mark.parametrize("method", [maximum_spanning_forest, mewst, bfs_spanning_forest])
def test_produces_spanning_forest(method, small_grid):
    ids = method(small_grid)
    assert _is_spanning_forest(small_grid, ids)


@pytest.mark.parametrize("method", [maximum_spanning_forest, mewst, bfs_spanning_forest])
def test_handles_disconnected(method, forest_graph):
    ids = method(forest_graph)
    assert _is_spanning_forest(forest_graph, ids)


def test_max_weight_tree_on_triangle(triangle_graph):
    """Kruskal keeps the two heaviest edges of a triangle."""
    ids = maximum_spanning_forest(triangle_graph)
    kept_weights = sorted(triangle_graph.w[ids])
    assert kept_weights == [2.0, 3.0]


def test_max_weight_respects_custom_key(triangle_graph):
    # Invert preference: with key = -w, the two lightest edges win.
    ids = maximum_spanning_forest(triangle_graph, key=-triangle_graph.w)
    kept = sorted(triangle_graph.w[ids])
    assert kept == [1.0, 2.0]


def test_effective_weights_formula(triangle_graph):
    eff = effective_weights(triangle_graph)
    deg = triangle_graph.weighted_degrees()
    for k in range(triangle_graph.edge_count):
        u, v = triangle_graph.u[k], triangle_graph.v[k]
        expected = triangle_graph.w[k] * 0.5 * (1 / deg[u] + 1 / deg[v])
        assert eff[k] == pytest.approx(expected)


def test_mewst_differs_from_max_weight_sometimes():
    """A hub graph: MEWST penalizes high-degree hub edges."""
    # Star of heavy edges + a light cycle around the leaves.
    edges = []
    hub_weight = 10.0
    for leaf in range(1, 6):
        edges.append((0, leaf, hub_weight))
    for leaf in range(1, 6):
        nxt = 1 + (leaf % 5)
        edges.append((min(leaf, nxt), max(leaf, nxt), 9.0))
    g = Graph.from_edges(6, edges)
    mst = set(maximum_spanning_forest(g).tolist())
    mew = set(mewst(g).tolist())
    # Plain max-weight keeps all five hub edges; MEWST should not.
    hub_edges = {k for k in range(g.edge_count) if g.u[k] == 0}
    assert hub_edges <= mst
    assert not hub_edges <= mew


def test_deterministic(small_mesh):
    a = mewst(small_mesh)
    b = mewst(small_mesh)
    np.testing.assert_array_equal(a, b)
