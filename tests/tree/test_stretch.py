"""Tests for stretch diagnostics."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.tree import (
    RootedForest,
    average_stretch,
    bfs_spanning_forest,
    edge_stretches,
    mewst,
    total_stretch,
)


def test_tree_edges_have_stretch_one(small_grid, small_grid_tree):
    stretches = edge_stretches(small_grid, small_grid_tree)
    tree_ids = small_grid_tree.edge_ids
    np.testing.assert_allclose(stretches[tree_ids], 1.0, rtol=1e-9)


def test_off_tree_stretch_positive(small_grid, small_grid_tree):
    stretches = edge_stretches(small_grid, small_grid_tree)
    assert (stretches > 0).all()


def test_triangle_stretch_by_hand(triangle_graph):
    # Tree = edges (1,2,w=2) and (0,2,w=3); off-tree edge (0,1,w=1):
    # path resistance = 1/2 + 1/3 = 5/6, stretch = 1 * 5/6.
    forest = RootedForest(triangle_graph, np.array([1, 2]))
    stretches = edge_stretches(triangle_graph, forest)
    assert stretches[0] == pytest.approx(5.0 / 6.0)


def test_total_and_average(small_grid, small_grid_tree):
    total = total_stretch(small_grid, small_grid_tree)
    avg = average_stretch(small_grid, small_grid_tree)
    assert total == pytest.approx(avg * small_grid.edge_count)
    # Tree edges contribute exactly n-1 to the total.
    assert total >= small_grid.n - 1


def test_mewst_not_worse_than_bfs_tree(medium_grid):
    """MEWST targets low stretch; BFS trees ignore weights entirely."""
    mew = RootedForest(medium_grid, mewst(medium_grid))
    bfs = RootedForest(medium_grid, bfs_spanning_forest(medium_grid))
    assert total_stretch(medium_grid, mew) <= total_stretch(medium_grid, bfs) * 1.05
