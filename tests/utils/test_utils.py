"""Tests for repro.utils (rng, timers, validation, reporting)."""

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils import (
    Table,
    Timer,
    as_rng,
    check_in_range,
    check_integer,
    check_positive,
    check_square_sparse,
    format_bytes,
    format_seconds,
)
from repro.utils.reporting import format_count


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        a = as_rng(42).standard_normal(5)
        b = as_rng(42).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).standard_normal(5)
        b = as_rng(2).standard_normal(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestTimer:
    def test_elapsed_nonnegative(self):
        with Timer() as t:
            pass
        assert t.elapsed >= 0.0

    def test_measures_sleep(self):
        with Timer() as t:
            time.sleep(0.02)
        assert t.elapsed >= 0.015

    def test_lap_and_restart(self):
        t = Timer()
        with t:
            first = t.lap()
            t.restart()
            second = t.lap()
        assert first >= 0.0 and second >= 0.0


class TestValidation:
    def test_check_positive_accepts(self):
        check_positive("x", 1.5)

    @pytest.mark.parametrize("bad", [0, -1, "a", None, float("nan")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0, 1)
        with pytest.raises(ValueError):
            check_in_range("x", 2, 0, 1)

    def test_check_integer(self):
        check_integer("k", 3)
        with pytest.raises(ValueError):
            check_integer("k", -1)
        with pytest.raises(ValueError):
            check_integer("k", 2.5)

    def test_check_square_sparse(self):
        check_square_sparse("A", sp.eye(3, format="csr"))
        with pytest.raises(TypeError):
            check_square_sparse("A", np.eye(3))
        with pytest.raises(ValueError):
            check_square_sparse("A", sp.random(3, 4))


class TestReporting:
    def test_format_seconds_scales(self):
        assert format_seconds(123.4) == "123"
        assert format_seconds(1.234) == "1.23"
        assert format_seconds(0.01234) == "0.012"

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0B"
        assert format_bytes(2048) == "2.0KB"
        assert "GB" in format_bytes(3 * 1024**3)

    def test_format_count(self):
        assert format_count(1_000_000) == "1.0E+06"
        assert format_count(123) == "123"

    def test_table_renders_rows(self):
        table = Table(["a", "b"])
        table.add_row(["x", 1.23456])
        text = table.render()
        assert "a" in text and "x" in text and "1.235" in text

    def test_table_rejects_bad_row(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only one"])
