#!/usr/bin/env python
"""Execute every runnable code block in the documentation.

Without arguments the checker covers the whole documentation surface:
``README.md`` plus everything ``docs/*.md`` globs to, and — unless
``--no-examples`` — every ``examples/*.py`` as a smoke test.  Passing
explicit markdown paths restricts the run to those files (no
examples).  ``make docs-check`` runs the no-argument form, so
documentation that drifts from the code fails CI instead of
misleading readers — the doctest idea applied to fenced blocks.

Rules
-----
* ```` ```python ```` blocks run through ``python -`` (stdin);
* ```` ```bash ```` / ```` ```sh ```` blocks run through
  ``bash -euo pipefail``;
* any other language tag (``text``, ``Makefile``, …) is skipped;
* a block preceded by an HTML comment ``<!-- docs-check: skip -->``
  is skipped.

Every block (and example) runs from the repository root with ``src``
prepended to ``PYTHONPATH``, mirroring the instructions the README
gives readers, and is killed after ``--timeout`` seconds (default
600) so one hung snippet cannot stall CI — that per-process cap is
the docs-check budget.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FENCE = re.compile(r"^```(\w*)\s*$")
SKIP_MARK = "<!-- docs-check: skip -->"

RUNNERS = {
    "python": [sys.executable, "-"],
    "bash": ["bash", "-euo", "pipefail", "-s"],
    "sh": ["bash", "-euo", "pipefail", "-s"],
}


def extract_blocks(text: str):
    """Yield ``(language, start_line, source)`` for each fenced block."""
    lines = text.splitlines()
    k = 0
    skip_next = False
    while k < len(lines):
        if SKIP_MARK in lines[k]:
            skip_next = True
            k += 1
            continue
        match = FENCE.match(lines[k])
        if not match:
            if lines[k].strip():
                # The marker only applies to the immediately following
                # fence; any intervening prose cancels it.
                skip_next = False
            k += 1
            continue
        language = match.group(1).lower()
        start = k + 1
        body = []
        k += 1
        while k < len(lines) and not lines[k].startswith("```"):
            body.append(lines[k])
            k += 1
        k += 1  # closing fence
        if skip_next:
            skip_next = False
            continue
        yield language, start, "\n".join(body) + "\n"


def _run_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _run_capped(command, timeout: float, **kwargs):
    """Run a process under the budget; a timeout is a failure, not a
    crash of the whole gate — remaining files must still be checked."""
    try:
        return subprocess.run(
            command,
            text=True,
            capture_output=True,
            cwd=REPO_ROOT,
            env=_run_env(),
            timeout=timeout,
            **kwargs,
        )
    except subprocess.TimeoutExpired as exc:
        stdout = exc.stdout or b""
        stderr = exc.stderr or b""
        return subprocess.CompletedProcess(
            command, returncode=124,
            stdout=stdout.decode(errors="replace")
            if isinstance(stdout, bytes) else stdout,
            stderr=(stderr.decode(errors="replace")
                    if isinstance(stderr, bytes) else stderr)
            + f"\nTIMEOUT: exceeded the {timeout:.0f}s docs-check budget\n",
        )


def run_block(language: str, source: str,
              timeout: float) -> subprocess.CompletedProcess:
    return _run_capped(RUNNERS[language], timeout, input=source)


def default_targets() -> list:
    """README plus every markdown file under ``docs/``."""
    targets = ["README.md"]
    targets.extend(
        sorted(
            str(path.relative_to(REPO_ROOT))
            for path in (REPO_ROOT / "docs").glob("*.md")
        )
    )
    return targets


def _report(label: str, proc, failures: int) -> int:
    if proc.returncode == 0:
        print(f"ok    {label}")
        return failures
    print(f"FAIL  {label} (exit {proc.returncode})")
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    return failures + 1


def main(argv) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files", nargs="*",
        help="markdown files to check (default: README.md + docs/*.md "
        "+ examples smoke tests)",
    )
    parser.add_argument(
        "--no-examples", action="store_true",
        help="skip the examples/*.py smoke tests",
    )
    parser.add_argument(
        "--timeout", type=float, default=600,
        help="per-block / per-example budget in seconds (default 600)",
    )
    args = parser.parse_args(argv)

    files = args.files or default_targets()
    run_examples = not args.no_examples and not args.files

    failures = 0
    total = 0
    for name in files:
        path = REPO_ROOT / name
        text = path.read_text()
        for language, line, source in extract_blocks(text):
            if language not in RUNNERS:
                continue
            total += 1
            proc = run_block(language, source, args.timeout)
            failures = _report(f"{name}:{line} [{language}]",
                               proc, failures)
    examples = []
    if run_examples:
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        for example in examples:
            total += 1
            proc = _run_capped(
                [sys.executable, str(example)], args.timeout
            )
            name = example.relative_to(REPO_ROOT)
            failures = _report(f"{name} [example]", proc, failures)
    print(
        f"docs-check: {total - failures}/{total} runnable blocks passed "
        f"({len(files)} docs, {len(examples)} examples)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
