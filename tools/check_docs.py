#!/usr/bin/env python
"""Execute every runnable code block in the given markdown files.

``make docs-check`` runs this over ``README.md`` and
``docs/architecture.md`` so documentation that drifts from the code
fails CI instead of misleading readers — the doctest idea applied to
fenced blocks.

Rules
-----
* ```` ```python ```` blocks run through ``python -`` (stdin);
* ```` ```bash ```` / ```` ```sh ```` blocks run through
  ``bash -euo pipefail``;
* any other language tag (``text``, ``Makefile``, …) is skipped;
* a block preceded by an HTML comment ``<!-- docs-check: skip -->``
  is skipped.

Every block runs from the repository root with ``src`` prepended to
``PYTHONPATH``, mirroring the instructions the README gives readers.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FENCE = re.compile(r"^```(\w*)\s*$")
SKIP_MARK = "<!-- docs-check: skip -->"

RUNNERS = {
    "python": [sys.executable, "-"],
    "bash": ["bash", "-euo", "pipefail", "-s"],
    "sh": ["bash", "-euo", "pipefail", "-s"],
}


def extract_blocks(text: str):
    """Yield ``(language, start_line, source)`` for each fenced block."""
    lines = text.splitlines()
    k = 0
    skip_next = False
    while k < len(lines):
        if SKIP_MARK in lines[k]:
            skip_next = True
            k += 1
            continue
        match = FENCE.match(lines[k])
        if not match:
            if lines[k].strip():
                # The marker only applies to the immediately following
                # fence; any intervening prose cancels it.
                skip_next = False
            k += 1
            continue
        language = match.group(1).lower()
        start = k + 1
        body = []
        k += 1
        while k < len(lines) and not lines[k].startswith("```"):
            body.append(lines[k])
            k += 1
        k += 1  # closing fence
        if skip_next:
            skip_next = False
            continue
        yield language, start, "\n".join(body) + "\n"


def run_block(language: str, source: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return subprocess.run(
        RUNNERS[language],
        input=source,
        text=True,
        capture_output=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=600,
    )


def main(argv) -> int:
    if not argv:
        argv = ["README.md", "docs/architecture.md"]
    failures = 0
    total = 0
    for name in argv:
        path = REPO_ROOT / name
        text = path.read_text()
        for language, line, source in extract_blocks(text):
            if language not in RUNNERS:
                continue
            total += 1
            proc = run_block(language, source)
            label = f"{name}:{line} [{language}]"
            if proc.returncode == 0:
                print(f"ok    {label}")
            else:
                failures += 1
                print(f"FAIL  {label} (exit {proc.returncode})")
                sys.stdout.write(proc.stdout)
                sys.stderr.write(proc.stderr)
    print(f"docs-check: {total - failures}/{total} runnable blocks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
