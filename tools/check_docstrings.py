#!/usr/bin/env python
"""Docstring-coverage lint for the public API surface.

Walks the published surface — everything ``repro.api``,
``repro.backends``, ``repro.core.sharding``,
``repro.graph.generators``, ``repro.incremental``, ``repro.kernels``,
``repro.partitioning`` and ``repro.service`` export, ``repro.sparsify``,
and every config class the method registry exposes — and fails when any public object (module, class,
function, method or property) lacks a docstring.
``make docs-check`` runs this, so an undocumented addition to the
public API fails CI rather than shipping dark.

Only attributes *defined* by a class are checked on it (inherited
members are the parent's responsibility), dunders other than
``__init__`` are skipped, and ``__init__`` itself is exempt when the
class docstring carries the parameter documentation (the numpydoc
style this package uses).
"""

from __future__ import annotations

import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _missing_in_class(cls, label: str):
    """Yield ``label.member`` for each undocumented public member."""
    if not (inspect.getdoc(cls) or "").strip():
        yield label
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            target = member.fget
        elif isinstance(member, (staticmethod, classmethod)):
            target = member.__func__
        elif inspect.isfunction(member):
            target = member
        else:
            continue  # class attributes document through the class
        if not (inspect.getdoc(target) or "").strip():
            yield f"{label}.{name}"


def _missing(obj, label: str):
    if inspect.isclass(obj):
        yield from _missing_in_class(obj, label)
    elif callable(obj):
        if not (inspect.getdoc(obj) or "").strip():
            yield label
    elif inspect.ismodule(obj):
        if not (obj.__doc__ or "").strip():
            yield label


def public_surface():
    """The objects the lint covers, as ``(label, object)`` pairs."""
    import repro
    import repro.api
    import repro.backends
    import repro.core.sharding
    import repro.graph.generators
    import repro.incremental
    import repro.kernels
    import repro.partitioning
    import repro.service
    from repro.api.registry import get_method, list_methods

    surface = [("repro", repro), ("repro.sparsify", repro.sparsify)]
    for name in repro.__all__:
        obj = getattr(repro, name)
        if not inspect.ismodule(obj):
            surface.append((f"repro.{name}", obj))
    for module in (repro.api, repro.backends, repro.core.sharding,
                   repro.graph.generators, repro.incremental,
                   repro.kernels, repro.partitioning, repro.service):
        surface.append((module.__name__, module))
        for name in module.__all__:
            surface.append((f"{module.__name__}.{name}",
                            getattr(module, name)))
    for method in list_methods():
        spec = get_method(method)
        cls = spec.config_cls
        surface.append((f"{cls.__module__}.{cls.__name__}", cls))
    return surface


def main() -> int:
    failures = []
    seen = set()
    checked = 0
    for label, obj in public_surface():
        key = (label, id(obj))
        if key in seen:
            continue
        seen.add(key)
        checked += 1
        failures.extend(_missing(obj, label))
    for item in sorted(set(failures)):
        print(f"MISSING DOCSTRING  {item}")
    print(
        f"docstring-check: {checked} public objects scanned, "
        f"{len(set(failures))} missing"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
