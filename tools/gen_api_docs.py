#!/usr/bin/env python
"""Write (or verify) the generated ``docs/api-reference.md``.

The reference is rendered from the live method and backend registries
by :func:`repro.api.docgen.api_reference_markdown` — the same text
``repro methods --markdown`` prints.  Two modes:

* default — regenerate ``docs/api-reference.md`` in place;
* ``--check`` — exit 1 when the file on disk differs from what the
  registries would render now (``make docs-check`` runs this, so a
  registry change without a doc regeneration fails CI).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGET = REPO_ROOT / "docs" / "api-reference.md"

sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="verify docs/api-reference.md is up to date instead of "
        "writing it",
    )
    args = parser.parse_args(argv)

    from repro.api.docgen import api_reference_markdown

    rendered = api_reference_markdown()
    if args.check:
        on_disk = TARGET.read_text() if TARGET.exists() else None
        if on_disk != rendered:
            print(
                f"STALE  {TARGET.relative_to(REPO_ROOT)} does not match "
                "the registries; regenerate with "
                "`python tools/gen_api_docs.py`",
                file=sys.stderr,
            )
            return 1
        print(f"ok     {TARGET.relative_to(REPO_ROOT)} is up to date")
        return 0
    TARGET.write_text(rendered)
    print(f"wrote  {TARGET.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
