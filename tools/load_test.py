#!/usr/bin/env python
"""Load-test the service daemon: N clients × M graphs, both executors.

The ``make load-smoke`` gate and the generator of ``BENCH_service.json``:
for each executor backend (thread, process) this harness

1. boots ``repro serve`` as a subprocess on an ephemeral port with an
   isolated cache root,
2. fires ``--clients`` concurrent client threads, each submitting
   ``--jobs-per-client`` jobs round-robin over ``--graphs`` distinct
   graphs (a deliberate burst, so identical in-flight submissions
   exercise request dedup),
3. waits for every job, then SIGTERM-drains the daemon,
4. repeats the same load against a *restarted* daemon on the same
   cache root — the warm phase, whose disk-cache hit ratio is the
   "warm restarts actually work" number,

and emits one record per executor with p50/p99 submit-to-done latency,
jobs/sec, dedup hits, worker restarts and the cache warm ratio.

``--smoke`` shrinks the matrix to CI size, enforces a hard wall-clock
budget (default 60 s), and fails the run unless every record shows
``jobs_per_second > 0`` and zero failed jobs.

Fault injection composes: ``--kill-workers K`` arms K kill-worker
tokens (via :mod:`repro.service.faults`) before the cold phase, so the
measured throughput includes the scheduler retrying over dead worker
processes (process executor only — a thread backend shares the
daemon's process).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Distinct generated graphs the clients rotate over (index i uses
#: scale GRAPH_SCALES[i % len]); more graphs = more cross-graph
#: concurrency, fewer = more dedup pressure.
GRAPH_SCALES = (0.02, 0.03, 0.04, 0.05)


def _percentile(values: list, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


class Daemon:
    """One ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, *, executor: str, workers: int, cache_dir: str,
                 faults_dir: str | None, deadline: float) -> None:
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (
            f"{src}:{env['PYTHONPATH']}" if env.get("PYTHONPATH")
            else src
        )
        env["REPRO_CACHE_DIR"] = cache_dir
        if faults_dir is not None:
            env["REPRO_SERVICE_FAULTS_DIR"] = faults_dir
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--workers", str(workers),
             "--executor", executor],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, cwd=REPO_ROOT, env=env,
        )
        self.url = self._read_banner(deadline)

    def _read_banner(self, deadline: float) -> str:
        holder: dict = {}
        reader = threading.Thread(
            target=lambda: holder.update(
                line=self.proc.stdout.readline()),
            daemon=True,
        )
        reader.start()
        reader.join(timeout=max(deadline - time.time(), 1.0))
        banner = holder.get("line")
        match = re.search(r"listening on (http://\S+)", banner or "")
        if not match:
            self.proc.kill()
            raise RuntimeError(
                f"daemon printed no listening banner, got {banner!r}"
            )
        return match.group(1)

    def stop(self, deadline: float) -> int:
        """SIGTERM-drain; return the exit code (kill on overrun)."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                return self.proc.wait(
                    timeout=max(deadline - time.time(), 1.0)
                )
            except subprocess.TimeoutExpired:
                self.proc.kill()
                return -9
        return self.proc.returncode

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()


def _run_phase(url: str, *, clients: int, graphs: int,
               jobs_per_client: int, deadline: float) -> dict:
    """One load burst against a live daemon; returns phase metrics."""
    from repro.service import ServiceClient

    specs = [
        {"case": "ecology2",
         "scale": GRAPH_SCALES[i % len(GRAPH_SCALES)]}
        for i in range(graphs)
    ]
    submitted: list = [[] for _ in range(clients)]
    errors: list = []

    def _client(index: int) -> None:
        client = ServiceClient(url)
        try:
            for j in range(jobs_per_client):
                spec = specs[(index + j) % len(specs)]
                job = client.submit(case=spec["case"],
                                    scale=spec["scale"],
                                    method="grass",
                                    edge_fraction=0.1)
                submitted[index].append(job["id"])
        except Exception as exc:  # noqa: BLE001 - reported, not hidden
            errors.append(f"client {index}: {type(exc).__name__}: {exc}")

    started = time.time()
    threads = [
        threading.Thread(target=_client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=max(deadline - time.time(), 1.0))

    poller = ServiceClient(url)
    job_ids = [job_id for per_client in submitted
               for job_id in per_client]
    finished: dict = {}
    while len(finished) < len(job_ids) and time.time() < deadline:
        for job in poller.jobs():
            if job["id"] in finished or job["id"] not in job_ids:
                continue
            if job["status"] in ("done", "failed", "cancelled"):
                finished[job["id"]] = job
        if len(finished) < len(job_ids):
            time.sleep(0.1)
    elapsed = time.time() - started

    stats = poller.stats()
    done = [job for job in finished.values() if job["status"] == "done"]
    failed = [job for job in finished.values()
              if job["status"] != "done"]
    errors.extend(
        f"{job['id']}: {job['status']} ({job.get('error')})"
        for job in failed
    )
    if len(finished) < len(job_ids):
        errors.append(
            f"{len(job_ids) - len(finished)} of {len(job_ids)} jobs "
            "unfinished at the deadline"
        )
    latencies = [job["finished_at"] - job["created_at"] for job in done]
    return {
        "seconds": round(elapsed, 3),
        "jobs": len(job_ids),
        "done": len(done),
        "failed": len(job_ids) - len(done),
        "jobs_per_second": round(len(done) / elapsed, 3) if elapsed
        else 0.0,
        "latency_seconds": {
            "p50": round(_percentile(latencies, 50), 4),
            "p99": round(_percentile(latencies, 99), 4),
            "mean": round(sum(latencies) / len(latencies), 4),
            "max": round(max(latencies), 4),
        } if latencies else None,
        "dedup_hits": stats["dedup_hits"],
        "completed_runs": stats["completed_runs"],
        "worker_restarts": stats["worker_restarts"],
        "cache_hits": stats["cache"]["hits"],
        "cache_misses": stats["cache"]["misses"],
        "errors": errors,
    }


def run_executor(executor: str, args, deadline: float) -> dict:
    """Cold phase + drain + warm restart phase for one backend."""
    cache_dir = tempfile.mkdtemp(prefix=f"load-test-{executor}-")
    faults_dir = None
    if args.kill_workers and executor == "process":
        faults_dir = tempfile.mkdtemp(prefix="load-test-faults-")
        from repro.service.faults import FaultInjector

        FaultInjector(faults_dir).arm("kill-worker",
                                      count=args.kill_workers)
    phases = {}
    for phase in ("cold", "warm"):
        daemon = Daemon(executor=executor, workers=args.workers,
                        cache_dir=cache_dir, faults_dir=faults_dir,
                        deadline=deadline)
        try:
            phases[phase] = _run_phase(
                daemon.url, clients=args.clients, graphs=args.graphs,
                jobs_per_client=args.jobs_per_client,
                deadline=deadline,
            )
        finally:
            code = daemon.stop(deadline)
            daemon.kill()
        if code != 0:
            phases[phase]["errors"].append(
                f"daemon exited {code} instead of draining cleanly"
            )
        print(f"load-test [{executor}/{phase}]: "
              f"{phases[phase]['done']}/{phases[phase]['jobs']} jobs "
              f"in {phases[phase]['seconds']}s "
              f"({phases[phase]['jobs_per_second']} jobs/s, "
              f"{phases[phase]['dedup_hits']} dedup hits)",
              flush=True)

    cold, warm = phases["cold"], phases["warm"]
    warm_total = warm["cache_hits"] + warm["cache_misses"]
    latencies = [p["latency_seconds"] for p in (cold, warm)
                 if p["latency_seconds"]]
    return {
        "bench": "service-load",
        "executor": executor,
        "workers": args.workers,
        "clients": args.clients,
        "graphs": args.graphs,
        "jobs_per_client": args.jobs_per_client,
        "jobs": cold["jobs"] + warm["jobs"],
        "failed": cold["failed"] + warm["failed"],
        "jobs_per_second": round(
            (cold["done"] + warm["done"])
            / max(cold["seconds"] + warm["seconds"], 1e-9), 3),
        "latency_seconds": {
            key: round(max(block[key] for block in latencies), 4)
            for key in ("p50", "p99", "mean", "max")
        } if latencies else None,
        "dedup_hits": cold["dedup_hits"] + warm["dedup_hits"],
        "worker_restarts": cold["worker_restarts"]
        + warm["worker_restarts"],
        "cache_warm_ratio": round(warm["cache_hits"] / warm_total, 4)
        if warm_total else 0.0,
        "phases": phases,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="service daemon load test (thread vs process "
        "executor)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads")
    parser.add_argument("--graphs", type=int, default=3,
                        help="distinct graphs the clients rotate over")
    parser.add_argument("--jobs-per-client", type=int, default=6)
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon worker threads/processes")
    parser.add_argument("--executors", nargs="+",
                        choices=("thread", "process"),
                        default=["thread", "process"])
    parser.add_argument("--kill-workers", type=int, default=0,
                        help="arm this many kill-worker faults before "
                        "the cold phase (process executor only)")
    parser.add_argument("--budget", type=float, default=None,
                        help="hard wall-clock budget in seconds "
                        "(default: 60 with --smoke, 900 otherwise)")
    parser.add_argument("--out", default=str(REPO_ROOT
                                             / "BENCH_service.json"),
                        help="output JSON path")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI matrix + hard assertions "
                        "(jobs/sec > 0, zero failed)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.clients = min(args.clients, 2)
        args.graphs = min(args.graphs, 2)
        args.jobs_per_client = min(args.jobs_per_client, 3)
        args.workers = min(args.workers, 1)
    budget = args.budget if args.budget is not None else (
        60.0 if args.smoke else 900.0)
    deadline = time.time() + budget

    records = []
    for executor in args.executors:
        records.append(run_executor(executor, args, deadline))

    out = Path(args.out)
    out.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")
    print(f"load-test: wrote {len(records)} records to {out}")

    failures = []
    for record in records:
        for phase_name, phase in record["phases"].items():
            for error in phase["errors"]:
                failures.append(
                    f"[{record['executor']}/{phase_name}] {error}")
        if args.smoke:
            if record["failed"]:
                failures.append(
                    f"[{record['executor']}] {record['failed']} "
                    "failed jobs in smoke mode")
            if record["jobs_per_second"] <= 0:
                failures.append(
                    f"[{record['executor']}] jobs_per_second is "
                    f"{record['jobs_per_second']}")
    if time.time() > deadline:
        failures.append(f"overran the {budget:.0f}s budget")
    if failures:
        for failure in failures:
            print(f"load-test: FAIL — {failure}", file=sys.stderr)
        return 1
    print(f"load-test: OK ({budget - (deadline - time.time()):.1f}s "
          f"of {budget:.0f}s budget)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
