#!/usr/bin/env python
"""Boot the service daemon, run one job round trip, shut down cleanly.

The ``make serve-smoke`` gate: starts ``repro serve`` as a subprocess
on an ephemeral port with an isolated cache root, submits one small
sparsification through :class:`repro.service.ServiceClient`, verifies
the result and the ``/stats`` counters, then delivers SIGTERM and
requires a graceful (exit 0) drain — all inside a hard wall-clock
budget (default 60 s) so CI catches a hung daemon instead of stalling.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BUDGET_SECONDS = float(os.environ.get("SERVE_SMOKE_BUDGET", 60))


def _fail(proc: subprocess.Popen, message: str) -> int:
    proc.kill()
    out = proc.stdout.read() if proc.stdout else ""
    print(f"serve-smoke: FAIL — {message}", file=sys.stderr)
    print(out, file=sys.stderr)
    return 1


def main() -> int:
    deadline = time.time() + BUDGET_SECONDS
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        f"{src}:{env['PYTHONPATH']}" if env.get("PYTHONPATH") else src
    )
    env["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="serve-smoke-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=REPO_ROOT, env=env,
    )
    try:
        return _smoke(proc, deadline)
    finally:
        # Never leak the daemon: any assert/client failure above still
        # tears the subprocess down (no-op after a clean exit).
        if proc.poll() is None:
            proc.kill()


def _smoke(proc: subprocess.Popen, deadline: float) -> int:
    from repro.service import ServiceClient

    # Read the banner on a helper thread: a daemon that hangs before
    # announcing (import stall, bind hang) must fail the gate within
    # the budget, not block readline() until the CI job times out.
    holder: dict = {}
    reader = threading.Thread(
        target=lambda: holder.update(line=proc.stdout.readline()),
        daemon=True,
    )
    reader.start()
    reader.join(timeout=max(deadline - time.time(), 1.0))
    banner = holder.get("line")
    if banner is None:
        return _fail(proc, "daemon printed no banner within the budget")
    match = re.search(r"listening on (http://\S+)", banner)
    if not match:
        return _fail(proc, f"no listening banner, got {banner!r}")
    url = match.group(1)
    print(f"serve-smoke: daemon up at {url}")

    client = ServiceClient(url)
    assert client.health()["status"] == "ok"
    job = client.submit(case="ecology2", scale=0.04, method="grass",
                        edge_fraction=0.1)
    record = client.result(
        job["id"], timeout=max(deadline - time.time(), 1.0)
    )
    assert record["method"] == "grass", record
    assert record["graph"]["sparsifier_edges"] > 0, record
    stats = client.stats()
    assert stats["jobs"]["done"] == 1, stats
    print(f"serve-smoke: job {job['id']} done "
          f"({record['graph']['sparsifier_edges']} edges, "
          f"{stats['completed_runs']} run)")

    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=max(deadline - time.time(), 1.0))
    except subprocess.TimeoutExpired:
        return _fail(proc, "daemon did not drain within the budget")
    if code != 0:
        return _fail(proc, f"daemon exited {code}")
    print(f"serve-smoke: OK (graceful drain, "
          f"{BUDGET_SECONDS - (deadline - time.time()):.1f}s "
          f"of {BUDGET_SECONDS:.0f}s budget)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
